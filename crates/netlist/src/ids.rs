//! Typed identifiers for netlist entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Builds an id from its raw index.
            #[inline]
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }

            /// The raw index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a cell instance within a [`crate::Netlist`].
    CellId,
    "cell"
);
id_type!(
    /// Identifier of a net within a [`crate::Netlist`].
    NetId,
    "net"
);
id_type!(
    /// Identifier of a library cell within a [`crate::Library`].
    LibCellId,
    "lib"
);
id_type!(
    /// Identifier of a compaction group: cells sharing a [`GroupId`] must be
    /// packed into the same PLB.
    GroupId,
    "grp"
);
id_type!(
    /// Identifier of an interned name string within a [`crate::Netlist`]'s
    /// name table. Hot paths compare and hash these fixed-width ids; the
    /// backing text is resolved only when rendering reports.
    NameId,
    "name"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let c = CellId::from_index(42);
        assert_eq!(c.index(), 42);
        assert_eq!(c.to_string(), "cell42");
        assert_eq!(NetId::from_index(7).to_string(), "net7");
        assert_eq!(LibCellId::from_index(1).to_string(), "lib1");
        assert_eq!(GroupId::from_index(0).to_string(), "grp0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}
