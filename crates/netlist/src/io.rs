//! Structural-Verilog interchange for component-cell netlists.
//!
//! [`write_verilog`] emits a gate-level module in a conservative Verilog
//! subset: one instance per library cell, via configurations carried as a
//! `CFG` parameter, constants as `1'b0`/`1'b1` assigns, and bus-style names
//! (`a[3]`) as escaped identifiers. [`read_verilog`] parses exactly that
//! subset back, so `write → read` is a lossless round trip (checked by
//! tests and usable as an external hand-off format).
//!
//! Pin naming: combinational inputs are `.i0/.i1/.i2` and the output `.y`;
//! the flip-flop uses `.d`/`.q`.

use std::collections::HashMap;
use std::fmt::Write as _;

use vpga_logic::Tt3;

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::ids::NetId;
use crate::library::Library;
use crate::netlist::Netlist;

/// Serializes the netlist as structural Verilog.
///
/// # Errors
///
/// Returns [`NetlistError`] if the netlist references cells missing from
/// `lib` (validate first).
///
/// # Example
///
/// ```
/// use vpga_netlist::{io, Netlist};
/// use vpga_netlist::library::generic;
///
/// let lib = generic::library();
/// let mut n = Netlist::new("top");
/// let a = n.add_input("a");
/// let g = n.add_lib_cell("g", &lib, "INV", &[a])?;
/// n.add_output("y", g);
/// let text = io::write_verilog(&n, &lib)?;
/// assert!(text.contains("module top"));
/// let back = io::read_verilog(&text, &lib)?;
/// assert_eq!(back.inputs().len(), n.inputs().len());
/// assert_eq!(back.outputs().len(), n.outputs().len());
/// # Ok::<(), vpga_netlist::NetlistError>(())
/// ```
pub fn write_verilog(netlist: &Netlist, lib: &Library) -> Result<String, NetlistError> {
    netlist.validate(lib)?;
    let mut out = String::new();
    let esc = |name: &str| -> String {
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            name.to_owned()
        } else {
            format!("\\{name} ")
        }
    };
    // Net naming: ports keep their cell names; internal nets are n<i>.
    let mut net_name: HashMap<NetId, String> = HashMap::new();
    for &pi in netlist.inputs() {
        let cell = netlist.cell(pi).expect("live PI");
        net_name.insert(cell.output().expect("PI net"), esc(netlist.cell_name(pi)));
    }
    let mut ports: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&pi| esc(netlist.cell_name(pi)))
        .collect();
    ports.extend(
        netlist
            .outputs()
            .iter()
            .map(|&po| esc(netlist.cell_name(po))),
    );
    let _ = writeln!(out, "// vpga structural netlist");
    let _ = writeln!(
        out,
        "module {} ({});",
        esc(netlist.name()),
        ports.join(", ")
    );
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "  input {};", esc(netlist.cell_name(pi)));
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "  output {};", esc(netlist.cell_name(po)));
    }
    // Wires for everything else.
    let mut wire_ix = 0usize;
    for net in netlist.nets() {
        if net_name.contains_key(&net) {
            continue;
        }
        let name = format!("n{wire_ix}");
        wire_ix += 1;
        let _ = writeln!(out, "  wire {name};");
        net_name.insert(net, name);
    }
    // Constants.
    for (_, cell) in netlist.cells() {
        if let CellKind::Constant(v) = cell.kind() {
            let net = cell.output().expect("tie net");
            let _ = writeln!(out, "  assign {} = 1'b{};", net_name[&net], u8::from(v));
        }
    }
    // Instances.
    for (id, cell) in netlist.cells() {
        let Some(lib_id) = cell.lib_id() else {
            continue;
        };
        let lc = lib.cell(lib_id).ok_or(NetlistError::UnknownCell(id))?;
        let cfg = cell.config();
        let params = match cfg {
            Some(t) => format!(" #(.CFG(8'h{:02X}))", t.bits()),
            None => String::new(),
        };
        let mut pins: Vec<String> = Vec::new();
        if lc.is_sequential() {
            pins.push(format!(".d({})", net_name[&cell.inputs()[0]]));
            pins.push(format!(".q({})", net_name[&cell.output().expect("Q")]));
        } else {
            for (i, n) in cell.inputs().iter().enumerate() {
                pins.push(format!(".i{i}({})", net_name[n]));
            }
            pins.push(format!(".y({})", net_name[&cell.output().expect("out")]));
        }
        let _ = writeln!(
            out,
            "  {}{} {} ({});",
            lc.name(),
            params,
            esc(netlist.cell_name(id)),
            pins.join(", ")
        );
    }
    // Output connections.
    for &po in netlist.outputs() {
        let cell = netlist.cell(po).expect("live PO");
        let _ = writeln!(
            out,
            "  assign {} = {};",
            esc(netlist.cell_name(po)),
            net_name[&cell.inputs()[0]]
        );
    }
    let _ = writeln!(out, "endmodule");
    Ok(out)
}

/// Parses the subset emitted by [`write_verilog`] back into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownLibCell`] for unknown cell types,
/// [`NetlistError::Parse`] (with 1-based line/column) for malformed text,
/// and other [`NetlistError`]s for structurally invalid netlists. The
/// parser never panics, whatever the input: truncated, duplicated, or
/// corrupted text comes back as an `Err`.
pub fn read_verilog(text: &str, lib: &Library) -> Result<Netlist, NetlistError> {
    let perr =
        |line: usize, col: usize, message: String| NetlistError::Parse { line, col, message };
    let mut netlist: Option<Netlist> = None;
    let mut outputs: Vec<(String, String)> = Vec::new(); // (port, source net)
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pending_outputs: Vec<(String, usize, usize)> = Vec::new();
    // Instances whose pins may reference nets defined later.
    struct Inst {
        lib_name: String,
        name: String,
        cfg: Option<Tt3>,
        pins: Vec<(String, String)>,
        line: usize,
        col: usize,
    }
    let mut instances: Vec<Inst> = Vec::new();
    let mut assigns: Vec<(String, String, usize, usize)> = Vec::new();
    let mut saw_endmodule = false;
    for (lix, raw) in text.lines().enumerate() {
        let lno = lix + 1;
        let line = raw.trim();
        // Column of the first significant character, 1-based.
        let col = raw.len() - raw.trim_start().len() + 1;
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "endmodule" {
            if netlist.is_none() {
                return Err(perr(lno, col, "endmodule before module header".into()));
            }
            saw_endmodule = true;
            continue;
        }
        if saw_endmodule {
            return Err(perr(lno, col, "statement after endmodule".into()));
        }
        if let Some(rest) = line.strip_prefix("module ") {
            if netlist.is_some() {
                return Err(perr(lno, col, "second module header".into()));
            }
            let name = rest.split_whitespace().next().unwrap_or("top");
            let name = name.trim_start_matches('\\').trim_end_matches('(');
            netlist = Some(Netlist::new(name.trim()));
            continue;
        }
        let n = netlist
            .as_mut()
            .ok_or_else(|| perr(lno, col, "statement before module header".into()))?;
        if let Some(rest) = line.strip_prefix("input ") {
            let name = parse_ident(rest);
            if name.is_empty() {
                return Err(perr(lno, col, "input declaration without a name".into()));
            }
            if n.cell_by_name(&name).is_some() {
                return Err(perr(lno, col, format!("duplicate port name {name:?}")));
            }
            let net = n.add_input(name.clone());
            nets.insert(name, net);
        } else if let Some(rest) = line.strip_prefix("output ") {
            let name = parse_ident(rest);
            if name.is_empty() {
                return Err(perr(lno, col, "output declaration without a name".into()));
            }
            pending_outputs.push((name, lno, col));
        } else if let Some(rest) = line.strip_prefix("wire ") {
            let name = parse_ident(rest);
            // Net created lazily when driven; remember the name.
            let _ = name;
        } else if let Some(rest) = line.strip_prefix("assign ") {
            let (lhs, rhs) = rest
                .split_once('=')
                .ok_or_else(|| perr(lno, col, format!("assign without '=': {line}")))?;
            let lhs = parse_ident(lhs);
            if lhs.is_empty() {
                return Err(perr(lno, col, "assign without a target".into()));
            }
            let rhs = rhs.trim().trim_end_matches(';').trim();
            if let Some(bit) = rhs.strip_prefix("1'b") {
                let value = bit.starts_with('1');
                let net = n.constant(value);
                nets.insert(lhs, net);
            } else {
                let src = parse_ident(rhs);
                if src.is_empty() {
                    return Err(perr(lno, col, "assign without a source".into()));
                }
                assigns.push((lhs, src, lno, col));
            }
        } else {
            // Instance line: CELL [#(.CFG(8'hXX))] name (.pin(net), ...);
            let inst = parse_instance(line)
                .ok_or_else(|| perr(lno, col, format!("malformed instance: {line}")))?;
            instances.push(Inst {
                lib_name: inst.0,
                name: inst.1,
                cfg: inst.2,
                pins: inst.3,
                line: lno,
                col,
            });
        }
    }
    let mut n = netlist.ok_or_else(|| perr(1, 1, "no module header found".into()))?;
    if !saw_endmodule {
        let last = text.lines().count().max(1);
        return Err(perr(last, 1, "missing endmodule".into()));
    }
    // Create instances with placeholder inputs, record their output nets,
    // then rewire (instances may reference each other in any order).
    let placeholder = n.constant(false);
    // (cell, pending (pin, net) rewires, source line, source column)
    type Fixup = (crate::ids::CellId, Vec<(usize, String)>, usize, usize);
    let mut fixups: Vec<Fixup> = Vec::new();
    for inst in &instances {
        let lc = lib
            .cell_by_name(&inst.lib_name)
            .ok_or_else(|| NetlistError::UnknownLibCell(inst.lib_name.clone()))?;
        if inst.name.is_empty() {
            return Err(perr(inst.line, inst.col, "instance without a name".into()));
        }
        let pins = vec![placeholder; lc.arity()];
        let out_net = n.add_lib_cell(inst.name.clone(), lib, &inst.lib_name, &pins)?;
        let cell = n
            .driver(out_net)
            .ok_or_else(|| perr(inst.line, inst.col, "instance output has no driver".into()))?;
        if let Some(cfg) = inst.cfg {
            n.set_config(cell, lib, Some(cfg))?;
        }
        let mut inputs: Vec<(usize, String)> = Vec::new();
        for (pin, net) in &inst.pins {
            if pin == "y" || pin == "q" {
                nets.insert(net.clone(), out_net);
            } else if pin == "d" {
                inputs.push((0, net.clone()));
            } else if let Some(ix) = pin.strip_prefix('i').and_then(|s| s.parse().ok()) {
                inputs.push((ix, net.clone()));
            } else {
                return Err(perr(
                    inst.line,
                    inst.col,
                    format!("unknown pin {pin} on {}", inst.lib_name),
                ));
            }
        }
        fixups.push((cell, inputs, inst.line, inst.col));
    }
    for (cell, inputs, lno, col) in fixups {
        for (pin, net_name) in inputs {
            let net = *nets
                .get(&net_name)
                .ok_or_else(|| perr(lno, col, format!("undriven net {net_name:?}")))?;
            n.connect_pin(cell, pin, net)?;
        }
    }
    for (port, src, lno, col) in assigns {
        if outputs.iter().any(|(p, _)| *p == port) {
            return Err(perr(lno, col, format!("duplicate assign to {port:?}")));
        }
        outputs.push((port, src));
    }
    for (port, lno, col) in pending_outputs {
        let src = outputs
            .iter()
            .find(|(p, _)| *p == port)
            .map(|(_, s)| s.clone())
            .ok_or_else(|| perr(lno, col, format!("output {port:?} never assigned")))?;
        let net = *nets
            .get(&src)
            .ok_or_else(|| perr(lno, col, format!("undriven net {src:?}")))?;
        if n.cell_by_name(&port).is_some() {
            return Err(perr(lno, col, format!("duplicate port name {port:?}")));
        }
        n.add_output(port, net);
    }
    n.validate(lib)?;
    Ok(n)
}

/// Extracts the first (possibly escaped) identifier from a fragment.
fn parse_ident(s: &str) -> String {
    let s = s.trim().trim_end_matches(';').trim();
    if let Some(rest) = s.strip_prefix('\\') {
        // Escaped identifier: up to the next whitespace.
        rest.split_whitespace().next().unwrap_or("").to_owned()
    } else {
        s.split(|c: char| c.is_whitespace() || c == ',' || c == ';')
            .next()
            .unwrap_or("")
            .to_owned()
    }
}

type ParsedInstance = (String, String, Option<Tt3>, Vec<(String, String)>);

fn parse_instance(line: &str) -> Option<ParsedInstance> {
    let line = line.trim().trim_end_matches(';');
    let (head, pins_part) = line.split_once('(')?;
    // head: CELL [#(.CFG(8'hXX))] name   — but '(' split may have cut into
    // the parameter list; handle by locating the *last* '(' block.
    let (head, pins_part) = if head.contains('#') && !head.contains("))") {
        // The split hit the parameter '('; re-split after the parameter.
        let param_end = line.find("))")? + 2;
        let (h, rest) = line.split_at(param_end);
        let rest = rest.trim();
        let (name, pins) = rest.split_once('(')?;
        (format!("{h} {name}"), pins.to_owned())
    } else {
        (head.to_owned(), pins_part.to_owned())
    };
    let mut cfg = None;
    let mut head_clean = head.clone();
    if let Some(ix) = head.find("#(.CFG(8'h") {
        // `get` rather than slicing: a truncated parameter must fail the
        // parse, not abort the process.
        let hex = head.get(ix + 10..ix + 12)?;
        cfg = Some(Tt3::new(u8::from_str_radix(hex, 16).ok()?));
        head_clean = format!(
            "{} {}",
            &head[..ix],
            head.get(ix..)
                .and_then(|t| t.split_once("))"))
                .map(|(_, r)| r)?
        );
    }
    let mut words = head_clean.split_whitespace();
    let lib_name = words.next()?.to_owned();
    let raw_name = words.collect::<Vec<_>>().join(" ");
    let name = parse_ident(&raw_name);
    let pins_str = pins_part.trim_end_matches(')');
    let mut pins = Vec::new();
    for part in pins_str.split("),") {
        let part = part.trim().trim_start_matches('.');
        let (pin, net) = part.split_once('(')?;
        pins.push((
            pin.trim().to_owned(),
            parse_ident(net.trim_end_matches(')')),
        ));
    }
    Some((lib_name, name, cfg, pins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generic;

    fn sample() -> (Netlist, Library) {
        let lib = generic::library();
        let mut n = Netlist::new("top");
        let a = n.add_input("a[0]");
        let b = n.add_input("b");
        let one = n.constant(true);
        let g = n.add_lib_cell("g1", &lib, "XOR2", &[a, b]).unwrap();
        let h = n.add_lib_cell("g2", &lib, "AND2", &[g, one]).unwrap();
        let q = n.add_lib_cell("ff", &lib, "DFF", &[h]).unwrap();
        n.add_output("y", q);
        n.add_output("mid", g);
        (n, lib)
    }

    #[test]
    fn write_emits_module_structure() {
        let (n, lib) = sample();
        let text = write_verilog(&n, &lib).unwrap();
        assert!(text.contains("module top"));
        assert!(text.contains("input \\a[0] "));
        assert!(text.contains("XOR2"));
        assert!(text.contains("DFF"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn roundtrip_preserves_function() {
        let (n, lib) = sample();
        let text = write_verilog(&n, &lib).unwrap();
        let back = read_verilog(&text, &lib).unwrap();
        assert_eq!(back.inputs().len(), n.inputs().len());
        assert_eq!(back.outputs().len(), n.outputs().len());
        let vectors: Vec<Vec<bool>> = (0..4u8)
            .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1])
            .collect();
        let div = crate::sim::first_divergence(&n, &lib, &back, &lib, &vectors).unwrap();
        assert_eq!(div, None);
    }

    #[test]
    fn roundtrip_preserves_via_configs() {
        use vpga_logic::FunctionSet256;
        use vpga_logic::Var;
        let mut lib = Library::new("prog");
        lib.add(crate::library::LibCell::new_programmable(
            "LUT3",
            crate::library::CellClass::Lut3,
            3,
            vpga_logic::Tt3::FALSE,
            FunctionSet256::full(),
            100.0,
            1.0,
            100.0,
            10.0,
        ))
        .unwrap();
        let mut n = Netlist::new("cfg");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let y = n.add_lib_cell("l", &lib, "LUT3", &[a, b, c]).unwrap();
        let cell = n.driver(y).unwrap();
        n.set_config(cell, &lib, Some(vpga_logic::Tt3::MAJ3))
            .unwrap();
        n.add_output("y", y);
        let _ = Var::A;
        let text = write_verilog(&n, &lib).unwrap();
        assert!(text.contains("8'hE8"), "{text}");
        let back = read_verilog(&text, &lib).unwrap();
        let lcell = back.cell_by_name("l").unwrap();
        assert_eq!(
            back.instance_function(lcell, &lib),
            Some(vpga_logic::Tt3::MAJ3)
        );
    }

    #[test]
    fn roundtrip_a_mapped_design() {
        use vpga_logic::Tt3;
        let _ = Tt3::FALSE;
        // A netlist with feedback through a DFF (toggle).
        let lib = generic::library();
        let mut n = Netlist::new("toggle");
        let seed = n.add_input("seed");
        let q = n.add_lib_cell("ff", &lib, "DFF", &[seed]).unwrap();
        let d = n.add_lib_cell("inv", &lib, "INV", &[q]).unwrap();
        let ff = n.cell_by_name("ff").unwrap();
        n.connect_pin(ff, 0, d).unwrap();
        n.add_output("q", q);
        let text = write_verilog(&n, &lib).unwrap();
        let back = read_verilog(&text, &lib).unwrap();
        let vectors = vec![vec![false]; 6];
        let div = crate::sim::first_divergence(&n, &lib, &back, &lib, &vectors).unwrap();
        assert_eq!(div, None);
    }

    #[test]
    fn unknown_cells_are_reported() {
        let lib = generic::library();
        let text = "module t (y);\n  output y;\n  BOGUS g (.i0(a), .y(n0));\n  assign y = n0;\nendmodule\n";
        assert!(matches!(
            read_verilog(text, &lib),
            Err(NetlistError::UnknownLibCell(_))
        ));
    }
}
