//! Netlist statistics, including the NAND2-equivalent gate count the paper
//! reports its designs in ("the gate count for each design is given in units
//! of equivalent 2-input Nand gates", §3.2).

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::CellKind;
use crate::graph;
use crate::library::{CellClass, Library};
use crate::netlist::Netlist;

/// Aggregate figures for a netlist against its library.
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistStats {
    /// Live library-cell instances per resource class.
    pub cells_by_class: BTreeMap<CellClass, usize>,
    /// Total cell area (µm²).
    pub total_area: f64,
    /// Area of combinational cells only (µm²).
    pub comb_area: f64,
    /// Area of sequential cells only (µm²).
    pub seq_area: f64,
    /// Number of live nets.
    pub num_nets: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Total sink pins across all nets.
    pub num_pins: usize,
    /// Maximum combinational depth in cells.
    pub depth: usize,
    /// Fraction of library instances that are sequential.
    pub seq_fraction: f64,
}

impl NetlistStats {
    /// Computes statistics for `netlist` against `lib`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (run
    /// [`Netlist::validate`] first).
    pub fn compute(netlist: &Netlist, lib: &Library) -> NetlistStats {
        let mut cells_by_class = BTreeMap::new();
        let mut total_area = 0.0;
        let mut comb_area = 0.0;
        let mut seq_area = 0.0;
        let mut seq_cells = 0usize;
        let mut lib_cells = 0usize;
        for (_, cell) in netlist.cells() {
            let CellKind::Lib(id) = cell.kind() else {
                continue;
            };
            let lc = lib.cell(id).expect("netlist validated against lib");
            *cells_by_class.entry(lc.class()).or_insert(0) += 1;
            total_area += lc.area();
            lib_cells += 1;
            if lc.is_sequential() {
                seq_area += lc.area();
                seq_cells += 1;
            } else {
                comb_area += lc.area();
            }
        }
        let num_pins = netlist.nets().map(|n| netlist.sinks(n).len()).sum();
        let depth = graph::logic_depth(netlist, lib).expect("netlist is acyclic");
        NetlistStats {
            cells_by_class,
            total_area,
            comb_area,
            seq_area,
            num_nets: netlist.num_nets(),
            num_inputs: netlist.inputs().len(),
            num_outputs: netlist.outputs().len(),
            num_pins,
            depth,
            seq_fraction: if lib_cells == 0 {
                0.0
            } else {
                seq_cells as f64 / lib_cells as f64
            },
        }
    }

    /// Number of library instances across all classes.
    pub fn num_lib_cells(&self) -> usize {
        self.cells_by_class.values().sum()
    }

    /// NAND2-equivalent gate count: total area divided by the area of one
    /// reference NAND2 gate.
    ///
    /// # Panics
    ///
    /// Panics if `nand2_area` is not strictly positive.
    pub fn nand2_equivalent(&self, nand2_area: f64) -> f64 {
        assert!(nand2_area > 0.0, "nand2_area must be positive");
        self.total_area / nand2_area
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} lib cells, {} nets, {} PI, {} PO, depth {}",
            self.num_lib_cells(),
            self.num_nets,
            self.num_inputs,
            self.num_outputs,
            self.depth
        )?;
        writeln!(
            f,
            "area {:.1} µm² (comb {:.1}, seq {:.1}), seq fraction {:.2}",
            self.total_area, self.comb_area, self.seq_area, self.seq_fraction
        )?;
        for (class, count) in &self.cells_by_class {
            writeln!(f, "  {class:8} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generic;

    #[test]
    fn stats_of_small_design() {
        let lib = generic::library();
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_lib_cell("x", &lib, "XOR2", &[a, b]).unwrap();
        let q = n.add_lib_cell("ff", &lib, "DFF", &[x]).unwrap();
        n.add_output("y", q);
        let stats = NetlistStats::compute(&n, &lib);
        assert_eq!(stats.num_lib_cells(), 2);
        assert_eq!(stats.num_inputs, 2);
        assert_eq!(stats.num_outputs, 1);
        assert_eq!(stats.cells_by_class[&CellClass::Generic], 1);
        assert_eq!(stats.cells_by_class[&CellClass::Dff], 1);
        assert!((stats.seq_fraction - 0.5).abs() < 1e-12);
        assert_eq!(stats.depth, 1);
        let xor_area = lib.cell_by_name("XOR2").unwrap().area();
        let dff_area = lib.cell_by_name("DFF").unwrap().area();
        assert!((stats.total_area - xor_area - dff_area).abs() < 1e-9);
        assert!((stats.comb_area - xor_area).abs() < 1e-9);
    }

    #[test]
    fn nand2_equivalent_uses_reference_area() {
        let lib = generic::library();
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let g = n.add_lib_cell("g", &lib, "NAND2", &[a, a]).unwrap();
        n.add_output("y", g);
        let stats = NetlistStats::compute(&n, &lib);
        let eq = stats.nand2_equivalent(generic::NAND2_AREA);
        assert!((eq - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reference_area_panics() {
        let lib = generic::library();
        let n = Netlist::new("empty");
        let stats = NetlistStats::compute(&n, &lib);
        let _ = stats.nand2_equivalent(0.0);
    }
}
