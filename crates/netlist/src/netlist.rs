//! The mutable gate-level netlist container.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{Cell, CellKind};
use crate::error::NetlistError;
use crate::ids::{CellId, GroupId, NameId, NetId};
use crate::library::Library;

/// An append-only intern table mapping name text to fixed-width
/// [`NameId`]s. Cells and nets store `NameId`s; hot paths (the by-name
/// index, fresh-name probing, snapshot round-trips) hash and compare the
/// 4-byte ids instead of the strings, which are resolved back to text
/// only for reports and error messages.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct NameTable {
    texts: Vec<String>,
    by_text: HashMap<String, NameId>,
}

impl NameTable {
    /// The id for `text`, interning it on first use.
    pub(crate) fn intern(&mut self, text: &str) -> NameId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = NameId::from_index(self.texts.len());
        self.texts.push(text.to_owned());
        self.by_text.insert(text.to_owned(), id);
        id
    }

    /// The id for `text`, if it has ever been interned.
    pub(crate) fn lookup(&self, text: &str) -> Option<NameId> {
        self.by_text.get(text).copied()
    }

    /// The text behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this table.
    pub(crate) fn resolve(&self, id: NameId) -> &str {
        &self.texts[id.index()]
    }
}

/// A net: one driver, any number of `(cell, pin)` sinks.
#[derive(Clone, Debug, PartialEq)]
struct Net {
    name: NameId,
    driver: Option<CellId>,
    sinks: Vec<(CellId, usize)>,
}

/// A gate-level netlist of single-output cells.
///
/// Cells and nets have stable ids across edits (removal leaves tombstones).
/// The netlist enforces single-driver nets structurally; richer invariants
/// (pin counts, combinational acyclicity) are checked by
/// [`Netlist::validate`].
///
/// # Example
///
/// ```
/// use vpga_netlist::Netlist;
/// use vpga_netlist::library::generic;
///
/// let lib = generic::library();
/// let mut n = Netlist::new("half_adder");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let s = n.add_lib_cell("xor", &lib, "XOR2", &[a, b])?;
/// let c = n.add_lib_cell("and", &lib, "AND2", &[a, b])?;
/// n.add_output("sum", s);
/// n.add_output("carry", c);
/// n.validate(&lib)?;
/// assert_eq!(n.num_cells(), 6); // 2 PI + 2 gates + 2 PO
/// # Ok::<(), vpga_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    names: NameTable,
    cells: Vec<Option<Cell>>,
    nets: Vec<Option<Net>>,
    by_name: HashMap<NameId, CellId>,
    inputs: Vec<CellId>,
    outputs: Vec<CellId>,
    next_group: u32,
    constants: [Option<NetId>; 2],
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            names: NameTable::default(),
            cells: Vec::new(),
            nets: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            next_group: 0,
            constants: [None, None],
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn alloc_net(&mut self, name: NameId) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Some(Net {
            name,
            driver: None,
            sinks: Vec::new(),
        }));
        id
    }

    fn alloc_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.by_name.insert(cell.name_id(), id);
        self.cells.push(Some(cell));
        id
    }

    /// True if a live cell currently uses `name`.
    fn name_in_use(&self, name: &str) -> bool {
        self.names
            .lookup(name)
            .is_some_and(|id| self.by_name.contains_key(&id))
    }

    /// Adds a primary input and returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used by another cell.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        assert!(!self.name_in_use(&name), "duplicate cell name {name:?}");
        let name = self.names.intern(&name);
        let net = self.alloc_net(name);
        let cell = Cell::new(name, CellKind::Input, Vec::new(), Some(net));
        let id = self.alloc_cell(cell);
        self.net_mut(net).driver = Some(id);
        self.inputs.push(id);
        net
    }

    /// Adds a primary output reading `net`, returns the output cell id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or `net` does not exist.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> CellId {
        let name = name.into();
        assert!(!self.name_in_use(&name), "duplicate cell name {name:?}");
        assert!(self.net_exists(net), "unknown net {net}");
        let name = self.names.intern(&name);
        let cell = Cell::new(name, CellKind::Output, vec![net], None);
        let id = self.alloc_cell(cell);
        self.net_mut(net).sinks.push((id, 0));
        self.outputs.push(id);
        id
    }

    /// The net carrying constant `value`, creating the tie cell on first use.
    pub fn constant(&mut self, value: bool) -> NetId {
        if let Some(net) = self.constants[value as usize] {
            return net;
        }
        let name = self.names.intern(&format!("_tie{}", value as u8));
        let net = self.alloc_net(name);
        let cell = Cell::new(name, CellKind::Constant(value), Vec::new(), Some(net));
        let id = self.alloc_cell(cell);
        self.net_mut(net).driver = Some(id);
        self.constants[value as usize] = Some(net);
        net
    }

    /// Instantiates library cell `lib_name` with the given input nets and
    /// returns the net its output drives.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateCellName`] if `name` is taken,
    /// * [`NetlistError::UnknownLibCell`] if `lib_name` is not in `lib`,
    /// * [`NetlistError::PinCountMismatch`] if `inputs.len()` differs from
    ///   the library cell's arity,
    /// * [`NetlistError::UnknownNet`] if an input net does not exist.
    pub fn add_lib_cell(
        &mut self,
        name: impl Into<String>,
        lib: &Library,
        lib_name: &str,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let lib_id = lib
            .cell_id(lib_name)
            .ok_or_else(|| NetlistError::UnknownLibCell(lib_name.to_owned()))?;
        let name = name.into();
        if self.name_in_use(&name) {
            return Err(NetlistError::DuplicateCellName(name));
        }
        let lc = lib.cell(lib_id).expect("id from this library");
        if inputs.len() != lc.arity() {
            return Err(NetlistError::PinCountMismatch {
                cell: name,
                got: inputs.len(),
                expected: lc.arity(),
            });
        }
        for &n in inputs {
            if !self.net_exists(n) {
                return Err(NetlistError::UnknownNet(n));
            }
        }
        let name = self.names.intern(&name);
        let net = self.alloc_net(name);
        let cell = Cell::new(name, CellKind::Lib(lib_id), inputs.to_vec(), Some(net));
        let id = self.alloc_cell(cell);
        self.net_mut(net).driver = Some(id);
        for (pin, &n) in inputs.iter().enumerate() {
            self.net_mut(n).sinks.push((id, pin));
        }
        Ok(net)
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Looks up a live cell.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.index()).and_then(|c| c.as_ref())
    }

    /// The name text of a live cell (for reports and error messages; hot
    /// paths should compare [`crate::NameId`]s instead).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn cell_name(&self, id: CellId) -> &str {
        let cell = self.cell(id).expect("live cell");
        self.names.resolve(cell.name_id())
    }

    /// Resolves an interned name id back to its text.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned by this netlist.
    pub fn name_text(&self, id: crate::NameId) -> &str {
        self.names.resolve(id)
    }

    /// True if the net id refers to a live net.
    pub fn net_exists(&self, id: NetId) -> bool {
        matches!(self.nets.get(id.index()), Some(Some(_)))
    }

    /// The name of a live net.
    pub fn net_name(&self, id: NetId) -> Option<&str> {
        self.nets
            .get(id.index())
            .and_then(|n| n.as_ref())
            .map(|n| self.names.resolve(n.name))
    }

    /// The cell driving `net`, if any.
    pub fn driver(&self, net: NetId) -> Option<CellId> {
        self.nets
            .get(net.index())
            .and_then(|n| n.as_ref())
            .and_then(|n| n.driver)
    }

    /// The `(cell, pin)` sinks of `net`.
    pub fn sinks(&self, net: NetId) -> &[(CellId, usize)] {
        self.nets
            .get(net.index())
            .and_then(|n| n.as_ref())
            .map(|n| n.sinks.as_slice())
            .unwrap_or(&[])
    }

    /// Looks up a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        let id = self.names.lookup(name)?;
        self.by_name.get(&id).copied()
    }

    /// Primary input cells, in insertion order.
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Primary output cells, in insertion order.
    pub fn outputs(&self) -> &[CellId] {
        &self.outputs
    }

    /// Iterates over live `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CellId::from_index(i), c)))
    }

    /// Iterates over live net ids.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NetId::from_index(i)))
    }

    /// Number of live cells (including port and tie pseudo-cells).
    pub fn num_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live nets.
    pub fn num_nets(&self) -> usize {
        self.nets.iter().filter(|n| n.is_some()).count()
    }

    /// Upper bound on cell indices (for dense side tables).
    pub fn cell_capacity(&self) -> usize {
        self.cells.len()
    }

    /// Upper bound on net indices (for dense side tables).
    pub fn net_capacity(&self) -> usize {
        self.nets.len()
    }

    // ------------------------------------------------------------------
    // Editing (used by compaction, buffering, packing)
    // ------------------------------------------------------------------

    fn net_mut(&mut self, id: NetId) -> &mut Net {
        self.nets
            .get_mut(id.index())
            .and_then(|n| n.as_mut())
            .expect("live net")
    }

    fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        self.cells
            .get_mut(id.index())
            .and_then(|c| c.as_mut())
            .expect("live cell")
    }

    /// Reconnects input pin `pin` of `cell` to `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell, the pin, or the net does not exist.
    pub fn connect_pin(
        &mut self,
        cell: CellId,
        pin: usize,
        net: NetId,
    ) -> Result<(), NetlistError> {
        if !self.net_exists(net) {
            return Err(NetlistError::UnknownNet(net));
        }
        let old = {
            let c = self.cell(cell).ok_or(NetlistError::UnknownCell(cell))?;
            *c.inputs().get(pin).ok_or(NetlistError::PinCountMismatch {
                cell: self.names.resolve(c.name_id()).to_owned(),
                got: pin,
                expected: c.inputs().len(),
            })?
        };
        self.net_mut(old)
            .sinks
            .retain(|&(c, p)| !(c == cell && p == pin));
        self.cell_mut(cell).inputs_mut()[pin] = net;
        self.net_mut(net).sinks.push((cell, pin));
        Ok(())
    }

    /// Moves every sink of `from` onto `to`, leaving `from` sinkless.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if either net does not exist.
    pub fn transfer_sinks(&mut self, from: NetId, to: NetId) -> Result<(), NetlistError> {
        if !self.net_exists(from) {
            return Err(NetlistError::UnknownNet(from));
        }
        if !self.net_exists(to) {
            return Err(NetlistError::UnknownNet(to));
        }
        let moved = std::mem::take(&mut self.net_mut(from).sinks);
        for &(cell, pin) in &moved {
            self.cell_mut(cell).inputs_mut()[pin] = to;
        }
        self.net_mut(to).sinks.extend(moved);
        Ok(())
    }

    /// Removes a library cell whose output has no sinks, together with its
    /// output net. Port and tie cells cannot be removed.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownCell`] if the cell does not exist or is a
    ///   port/tie cell,
    /// * [`NetlistError::OutputInUse`] if the output net still has sinks.
    pub fn remove_cell(&mut self, id: CellId) -> Result<(), NetlistError> {
        let cell = self.cell(id).ok_or(NetlistError::UnknownCell(id))?;
        if cell.kind().is_port_or_tie() {
            return Err(NetlistError::UnknownCell(id));
        }
        let out = cell.output();
        if let Some(out) = out {
            if !self.sinks(out).is_empty() {
                return Err(NetlistError::OutputInUse(id));
            }
        }
        let inputs: Vec<NetId> = cell.inputs().to_vec();
        let name = cell.name_id();
        for (pin, net) in inputs.into_iter().enumerate() {
            self.net_mut(net)
                .sinks
                .retain(|&(c, p)| !(c == id && p == pin));
        }
        if let Some(out) = out {
            self.nets[out.index()] = None;
        }
        self.by_name.remove(&name);
        self.cells[id.index()] = None;
        Ok(())
    }

    /// Removes library cells with sinkless outputs until none remain
    /// (dead-logic sweep). Returns the number of cells removed.
    pub fn sweep_dead(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let dead: Vec<CellId> = self
                .cells()
                .filter(|(_, c)| !c.kind().is_port_or_tie())
                .filter(|(_, c)| c.output().is_none_or(|o| self.sinks(o).is_empty()))
                .map(|(id, _)| id)
                .collect();
            if dead.is_empty() {
                return removed;
            }
            for id in dead {
                self.remove_cell(id).expect("dead cell is removable");
                removed += 1;
            }
        }
    }

    /// Programs the via configuration of a library-cell instance to
    /// `config` (or restores the library default with `None`).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownCell`] if the cell does not exist or is not
    ///   a library instance,
    /// * [`NetlistError::InvalidConfig`] if the function is outside the
    ///   library cell's allowed set.
    pub fn set_config(
        &mut self,
        cell: CellId,
        lib: &Library,
        config: Option<vpga_logic::Tt3>,
    ) -> Result<(), NetlistError> {
        let c = self.cell(cell).ok_or(NetlistError::UnknownCell(cell))?;
        let CellKind::Lib(lib_id) = c.kind() else {
            return Err(NetlistError::UnknownCell(cell));
        };
        let lc = lib.cell(lib_id).ok_or(NetlistError::UnknownCell(cell))?;
        if let Some(f) = config {
            if !lc.allowed().contains(f) {
                return Err(NetlistError::InvalidConfig {
                    cell: self.names.resolve(c.name_id()).to_owned(),
                    function: f,
                });
            }
        }
        self.cell_mut(cell).set_config(config);
        Ok(())
    }

    /// The effective combinational function of a library-cell instance: its
    /// programmed configuration if any, else the library default.
    pub fn instance_function(&self, cell: CellId, lib: &Library) -> Option<vpga_logic::Tt3> {
        let c = self.cell(cell)?;
        let lib_id = c.lib_id()?;
        let lc = lib.cell(lib_id)?;
        Some(c.config().unwrap_or_else(|| lc.function()))
    }

    /// Allocates a fresh compaction group id.
    pub fn new_group(&mut self) -> GroupId {
        let g = GroupId::from_index(self.next_group as usize);
        self.next_group += 1;
        g
    }

    /// Assigns `cell` to `group` (or clears it with `None`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the cell does not exist.
    pub fn set_group(&mut self, cell: CellId, group: Option<GroupId>) -> Result<(), NetlistError> {
        if self.cell(cell).is_none() {
            return Err(NetlistError::UnknownCell(cell));
        }
        self.cell_mut(cell).set_group(group);
        Ok(())
    }

    /// A fresh cell name derived from `stem` that is unused in this
    /// netlist. A name counts as used only while a live cell holds it
    /// (the intern table itself is append-only).
    pub fn fresh_name(&self, stem: &str) -> String {
        if !self.name_in_use(stem) {
            return stem.to_owned();
        }
        let mut i = 0usize;
        loop {
            let candidate = format!("{stem}_{i}");
            if !self.name_in_use(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks structural invariants: every live net is driven, pin counts
    /// match library arities, sink back-references are consistent, and the
    /// combinational part is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, lib: &Library) -> Result<(), NetlistError> {
        for (i, net) in self.nets.iter().enumerate() {
            let Some(net) = net else { continue };
            let id = NetId::from_index(i);
            let Some(driver) = net.driver else {
                return Err(NetlistError::UndrivenNet(id));
            };
            match self.cell(driver) {
                Some(c) if c.output() == Some(id) => {}
                _ => return Err(NetlistError::UndrivenNet(id)),
            }
            for &(cell, pin) in &net.sinks {
                match self.cell(cell) {
                    Some(c) if c.inputs().get(pin) == Some(&id) => {}
                    _ => return Err(NetlistError::UnknownCell(cell)),
                }
            }
        }
        for (id, cell) in self.cells() {
            if let CellKind::Lib(lib_id) = cell.kind() {
                let lc = lib.cell(lib_id).ok_or(NetlistError::UnknownCell(id))?;
                if cell.inputs().len() != lc.arity() {
                    return Err(NetlistError::PinCountMismatch {
                        cell: self.names.resolve(cell.name_id()).to_owned(),
                        got: cell.inputs().len(),
                        expected: lc.arity(),
                    });
                }
            }
            if let (Some(cfg), CellKind::Lib(lib_id)) = (cell.config(), cell.kind()) {
                let lc = lib.cell(lib_id).ok_or(NetlistError::UnknownCell(id))?;
                if !lc.allowed().contains(cfg) {
                    return Err(NetlistError::InvalidConfig {
                        cell: self.names.resolve(cell.name_id()).to_owned(),
                        function: cfg,
                    });
                }
            }
            for &n in cell.inputs() {
                if !self.net_exists(n) {
                    return Err(NetlistError::UnknownNet(n));
                }
            }
        }
        crate::graph::combinational_topo_order(self, lib).map(|_| ())
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Serializes the complete netlist state — intern table, tombstones,
    /// group counter, everything — so that [`Netlist::decode_snapshot`]
    /// reproduces a bit-identical netlist (ids, iteration order, and
    /// fresh-name behavior included).
    pub fn encode_snapshot(&self, w: &mut crate::wire::Writer) {
        w.str(&self.name);
        w.usize(self.names.texts.len());
        for text in &self.names.texts {
            w.str(text);
        }
        let encode_kind = |w: &mut crate::wire::Writer, kind: CellKind| match kind {
            CellKind::Input => w.u8(0),
            CellKind::Output => w.u8(1),
            CellKind::Constant(v) => w.u8(2 + v as u8),
            CellKind::Lib(id) => {
                w.u8(4);
                w.u32(id.index() as u32);
            }
        };
        w.usize(self.cells.len());
        for cell in &self.cells {
            w.opt(cell.as_ref(), |w, cell| {
                w.u32(cell.name_id().index() as u32);
                encode_kind(w, cell.kind());
                w.usize(cell.inputs().len());
                for n in cell.inputs() {
                    w.u32(n.index() as u32);
                }
                w.opt(cell.output(), |w, n| w.u32(n.index() as u32));
                w.opt(cell.group(), |w, g| w.u32(g.index() as u32));
                w.opt(cell.config(), |w, t| w.u8(t.bits()));
            });
        }
        w.usize(self.nets.len());
        for net in &self.nets {
            w.opt(net.as_ref(), |w, net| {
                w.u32(net.name.index() as u32);
                w.opt(net.driver, |w, c| w.u32(c.index() as u32));
                w.usize(net.sinks.len());
                for &(c, pin) in &net.sinks {
                    w.u32(c.index() as u32);
                    w.usize(pin);
                }
            });
        }
        for list in [&self.inputs, &self.outputs] {
            w.usize(list.len());
            for &c in list {
                w.u32(c.index() as u32);
            }
        }
        w.u32(self.next_group);
        for c in self.constants {
            w.opt(c, |w, n| w.u32(n.index() as u32));
        }
    }

    /// Rebuilds a netlist from [`Netlist::encode_snapshot`] bytes. The
    /// by-name index is reconstructed from the live cells. Returns `None`
    /// on truncated or malformed input.
    pub fn decode_snapshot(r: &mut crate::wire::Reader<'_>) -> Option<Netlist> {
        let name = r.str()?;
        let mut names = NameTable::default();
        let n_texts = r.usize()?;
        for _ in 0..n_texts {
            let text = r.str()?;
            names.intern(&text);
        }
        let decode_kind = |r: &mut crate::wire::Reader<'_>| -> Option<CellKind> {
            Some(match r.u8()? {
                0 => CellKind::Input,
                1 => CellKind::Output,
                2 => CellKind::Constant(false),
                3 => CellKind::Constant(true),
                4 => CellKind::Lib(crate::LibCellId::from_index(r.u32()? as usize)),
                _ => return None,
            })
        };
        let n_cells = r.usize()?;
        let mut cells: Vec<Option<Cell>> = Vec::with_capacity(n_cells.min(1 << 24));
        for _ in 0..n_cells {
            cells.push(r.opt(|r| {
                let name = NameId::from_index(r.u32()? as usize);
                if name.index() >= names.texts.len() {
                    return None;
                }
                let kind = decode_kind(r)?;
                let n_inputs = r.usize()?;
                let mut inputs = Vec::with_capacity(n_inputs.min(1 << 16));
                for _ in 0..n_inputs {
                    inputs.push(NetId::from_index(r.u32()? as usize));
                }
                let output = r.opt(|r| Some(NetId::from_index(r.u32()? as usize)))?;
                let group = r.opt(|r| Some(GroupId::from_index(r.u32()? as usize)))?;
                let config = r.opt(|r| Some(vpga_logic::Tt3::new(r.u8()?)))?;
                Some(Cell::from_parts(name, kind, inputs, output, group, config))
            })?);
        }
        let n_nets = r.usize()?;
        let mut nets: Vec<Option<Net>> = Vec::with_capacity(n_nets.min(1 << 24));
        for _ in 0..n_nets {
            nets.push(r.opt(|r| {
                let name = NameId::from_index(r.u32()? as usize);
                if name.index() >= names.texts.len() {
                    return None;
                }
                let driver = r.opt(|r| Some(CellId::from_index(r.u32()? as usize)))?;
                let n_sinks = r.usize()?;
                let mut sinks = Vec::with_capacity(n_sinks.min(1 << 16));
                for _ in 0..n_sinks {
                    let c = CellId::from_index(r.u32()? as usize);
                    let pin = r.usize()?;
                    sinks.push((c, pin));
                }
                Some(Net {
                    name,
                    driver,
                    sinks,
                })
            })?);
        }
        let mut lists: [Vec<CellId>; 2] = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = r.usize()?;
            for _ in 0..n {
                list.push(CellId::from_index(r.u32()? as usize));
            }
        }
        let [inputs, outputs] = lists;
        let next_group = r.u32()?;
        let mut constants = [None, None];
        for c in &mut constants {
            *c = r.opt(|r| Some(NetId::from_index(r.u32()? as usize)))?;
        }
        let by_name: HashMap<NameId, CellId> = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (c.name_id(), CellId::from_index(i))))
            .collect();
        Some(Netlist {
            name,
            names,
            cells,
            nets,
            by_name,
            inputs,
            outputs,
            next_group,
            constants,
        })
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {:?}: {} cells, {} nets, {} PI, {} PO",
            self.name,
            self.num_cells(),
            self.num_nets(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generic;

    fn xor_pair() -> (Netlist, Library) {
        let lib = generic::library();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_lib_cell("x", &lib, "XOR2", &[a, b]).unwrap();
        n.add_output("y", x);
        (n, lib)
    }

    #[test]
    fn build_and_validate() {
        let (n, lib) = xor_pair();
        n.validate(&lib).unwrap();
        assert_eq!(n.num_cells(), 4);
        assert_eq!(n.num_nets(), 3);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        assert!(matches!(
            n.add_lib_cell("x", &lib, "INV", &[a]),
            Err(NetlistError::DuplicateCellName(_))
        ));
    }

    #[test]
    fn pin_count_mismatch_rejected() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        assert!(matches!(
            n.add_lib_cell("bad", &lib, "MUX2", &[a]),
            Err(NetlistError::PinCountMismatch { .. })
        ));
    }

    #[test]
    fn constants_are_shared() {
        let mut n = Netlist::new("c");
        let t1 = n.constant(true);
        let t2 = n.constant(true);
        let f1 = n.constant(false);
        assert_eq!(t1, t2);
        assert_ne!(t1, f1);
    }

    #[test]
    fn connect_pin_rewires_and_updates_sinks() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        let b = n.cell(n.inputs()[1]).unwrap().output().unwrap();
        let x = n.cell_by_name("x").unwrap();
        n.connect_pin(x, 1, a).unwrap();
        assert_eq!(n.cell(x).unwrap().inputs(), &[a, a]);
        assert!(n.sinks(b).is_empty());
        assert_eq!(n.sinks(a).len(), 2);
        n.validate(&lib).unwrap();
    }

    #[test]
    fn transfer_sinks_moves_everything() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        let inv = n.add_lib_cell("inv", &lib, "INV", &[a]).unwrap();
        // Reroute all consumers of a through the inverter... then undo.
        n.transfer_sinks(a, inv).unwrap();
        // transfer moved the inverter's own pin too — reconnect it.
        let inv_cell = n.cell_by_name("inv").unwrap();
        n.connect_pin(inv_cell, 0, a).unwrap();
        n.validate(&lib).unwrap();
        let x = n.cell_by_name("x").unwrap();
        assert_eq!(n.cell(x).unwrap().inputs()[0], inv);
    }

    #[test]
    fn remove_cell_requires_sinkless_output() {
        let (mut n, _lib) = xor_pair();
        let x = n.cell_by_name("x").unwrap();
        assert!(matches!(
            n.remove_cell(x),
            Err(NetlistError::OutputInUse(_))
        ));
    }

    #[test]
    fn sweep_dead_removes_chains() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        let i1 = n.add_lib_cell("d1", &lib, "INV", &[a]).unwrap();
        let _i2 = n.add_lib_cell("d2", &lib, "INV", &[i1]).unwrap();
        assert_eq!(n.sweep_dead(), 2);
        assert!(n.cell_by_name("d1").is_none());
        n.validate(&lib).unwrap();
    }

    #[test]
    fn removed_cell_frees_its_name() {
        let (mut n, lib) = xor_pair();
        let a = n.cell(n.inputs()[0]).unwrap().output().unwrap();
        let _ = n.add_lib_cell("tmp", &lib, "INV", &[a]).unwrap();
        let tmp = n.cell_by_name("tmp").unwrap();
        n.remove_cell(tmp).unwrap();
        assert!(n.add_lib_cell("tmp", &lib, "BUF", &[a]).is_ok());
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let (n, _) = xor_pair();
        assert_eq!(n.fresh_name("z"), "z");
        assert_eq!(n.fresh_name("x"), "x_0");
    }

    #[test]
    fn groups_are_assignable() {
        let (mut n, _) = xor_pair();
        let g = n.new_group();
        let x = n.cell_by_name("x").unwrap();
        n.set_group(x, Some(g)).unwrap();
        assert_eq!(n.cell(x).unwrap().group(), Some(g));
        n.set_group(x, None).unwrap();
        assert_eq!(n.cell(x).unwrap().group(), None);
    }

    #[test]
    fn display_summarizes() {
        let (n, _) = xor_pair();
        let s = n.to_string();
        assert!(s.contains("4 cells"));
    }

    #[test]
    fn config_of_fixed_cell_is_rejected() {
        let (mut n, lib) = xor_pair();
        let x = n.cell_by_name("x").unwrap();
        // Generic XOR2 is fixed-function: only its own table is allowed.
        let own = lib.cell_by_name("XOR2").unwrap().function();
        n.set_config(x, &lib, Some(own)).unwrap();
        assert!(matches!(
            n.set_config(x, &lib, Some(vpga_logic::Tt3::MAJ3)),
            Err(NetlistError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn programmable_cell_accepts_and_reports_config() {
        use crate::library::{CellClass, LibCell};
        use vpga_logic::{FunctionSet256, Tt3};
        let mut lib = Library::new("prog");
        lib.add(LibCell::new_programmable(
            "LUT3",
            CellClass::Lut3,
            3,
            Tt3::FALSE,
            FunctionSet256::full(),
            100.0,
            1.0,
            100.0,
            10.0,
        ))
        .unwrap();
        let mut n = Netlist::new("p");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let y = n.add_lib_cell("l", &lib, "LUT3", &[a, b, c]).unwrap();
        n.add_output("y", y);
        let l = n.cell_by_name("l").unwrap();
        assert_eq!(n.instance_function(l, &lib), Some(Tt3::FALSE));
        n.set_config(l, &lib, Some(Tt3::MAJ3)).unwrap();
        assert_eq!(n.instance_function(l, &lib), Some(Tt3::MAJ3));
        n.validate(&lib).unwrap();
        let mut sim = crate::sim::Simulator::new(&n, &lib).unwrap();
        assert_eq!(sim.eval(&[true, true, false]), vec![true]);
        assert_eq!(sim.eval(&[true, false, false]), vec![false]);
    }
}
