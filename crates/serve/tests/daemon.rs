//! End-to-end daemon tests over real sockets: admission control, job
//! execution with fingerprint parity, deadline fast-fail, chaos
//! poisoning, and graceful drain.

use std::time::Duration;

use vpga_core::PlbArchitecture;
use vpga_designs::{DesignParams, NamedDesign};
use vpga_flow::{run_design, FlowConfig};
use vpga_serve::{get, spawn, DaemonConfig};

fn test_daemon(chaos: bool) -> vpga_serve::DaemonHandle {
    spawn(DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        cache_budget: 64 << 20,
        checkpoint_dir: None,
        chaos,
    })
    .expect("daemon spawn")
}

fn fingerprint(body: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix("fingerprint 0x"))
        .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
}

#[test]
fn healthz_stats_and_404() {
    let daemon = test_daemon(false);
    let (status, body) = get(daemon.addr(), "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = get(daemon.addr(), "/stats").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("completed=0"), "fresh daemon stats: {body}");
    assert!(body.contains("cache entries=0"), "stats: {body}");
    let (status, _) = get(daemon.addr(), "/nope").unwrap();
    assert_eq!(status, 404);
    daemon.shutdown();
    let summary = daemon.join();
    assert!(summary.cache_valid);
}

#[test]
fn bad_requests_are_rejected_not_crashed() {
    let daemon = test_daemon(false);
    for path in [
        "/job",
        "/job?design=nope&arch=granular&variant=a",
        "/job?design=alu&arch=asic&variant=a",
        "/job?design=alu&arch=granular&variant=c",
        "/job?design=alu&arch=granular&variant=a&params=huge",
        "/job?design=alu&arch=granular&variant=a&deadline_ms=soon",
    ] {
        let (status, _) = get(daemon.addr(), path).unwrap();
        assert_eq!(status, 400, "{path} should be a 400");
    }
    let (status, _) = get(daemon.addr(), "/healthz").unwrap();
    assert_eq!(status, 200, "daemon must survive bad requests");
    daemon.shutdown();
    daemon.join();
}

#[test]
fn job_fingerprint_matches_batch_and_warm_run_hits() {
    let daemon = test_daemon(false);
    let path = "/job?design=alu&arch=granular&variant=a&params=tiny";
    let (status, cold) = get(daemon.addr(), path).unwrap();
    assert_eq!(status, 200);
    assert!(cold.contains("front hit=false"), "cold run: {cold}");
    assert!(
        cold.contains("stage synth"),
        "cold run streams stages: {cold}"
    );
    let (_, warm) = get(daemon.addr(), path).unwrap();
    assert!(warm.contains("front hit=true"), "warm run: {warm}");
    assert!(warm.contains("result hit=true"), "warm run: {warm}");
    let batch = run_design(
        &NamedDesign::Alu.generate(&DesignParams::tiny()),
        &PlbArchitecture::granular(),
        &FlowConfig::default(),
    )
    .unwrap();
    assert_eq!(fingerprint(&cold), Some(batch.flow_a.fingerprint()));
    assert_eq!(fingerprint(&warm), Some(batch.flow_a.fingerprint()));
    daemon.shutdown();
    let summary = daemon.join();
    assert_eq!(summary.completed, 2);
    assert!(summary.cache_valid);
}

#[test]
fn zero_queue_depth_rejects_with_retry_after() {
    let daemon = spawn(DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 0,
        cache_budget: 1 << 20,
        checkpoint_dir: None,
        chaos: false,
    })
    .unwrap();
    // With a zero-depth queue every connection is turned away at the
    // door — bounded admission, never unbounded buffering.
    let (status, body) = get(daemon.addr(), "/healthz").unwrap();
    assert_eq!(status, 503);
    assert!(body.contains("retry"), "admission body: {body}");
    daemon.shutdown();
    let summary = daemon.join();
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.accepted, 0);
}

#[test]
fn zero_deadline_fails_fast_without_running_stages() {
    let daemon = test_daemon(false);
    let (status, body) = get(
        daemon.addr(),
        "/job?design=fpu&arch=lut&variant=b&params=tiny&deadline_ms=0",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("error "), "zero deadline must error: {body}");
    assert!(!body.contains("stage "), "no stage may run: {body}");
    assert!(fingerprint(&body).is_none());
    daemon.shutdown();
    let summary = daemon.join();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.cache.misses, 0, "cache untouched by rejected job");
}

#[test]
fn poisoned_job_fails_isolated_and_next_job_is_clean() {
    let daemon = test_daemon(true);
    let poisoned = get(
        daemon.addr(),
        "/job?design=alu&arch=granular&variant=a&params=tiny&poison=place",
    )
    .unwrap();
    assert_eq!(poisoned.0, 200);
    assert!(
        poisoned.1.contains("error ") && poisoned.1.contains("panic"),
        "poison must surface as a trapped panic: {}",
        poisoned.1
    );
    // The abandoned claim must not wedge the key: the same job now runs
    // clean and matches batch.
    let (_, clean) = get(
        daemon.addr(),
        "/job?design=alu&arch=granular&variant=a&params=tiny",
    )
    .unwrap();
    let batch = run_design(
        &NamedDesign::Alu.generate(&DesignParams::tiny()),
        &PlbArchitecture::granular(),
        &FlowConfig::default(),
    )
    .unwrap();
    assert_eq!(fingerprint(&clean), Some(batch.flow_a.fingerprint()));
    daemon.cache().validate_all().unwrap();
    daemon.shutdown();
    let summary = daemon.join();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.completed, 1);
    assert!(summary.cache_valid);
}

#[test]
fn chaos_params_are_ignored_without_chaos_mode() {
    let daemon = test_daemon(false);
    let (status, body) = get(
        daemon.addr(),
        "/job?design=alu&arch=granular&variant=a&params=tiny&poison=place",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(fingerprint(&body).is_some(), "poison ignored: {body}");
    daemon.shutdown();
    daemon.join();
}

#[test]
fn drain_mid_job_cancels_cooperatively_and_leaves_cache_valid() {
    let daemon = test_daemon(true);
    let addr = daemon.addr();
    // A stalled job: sleeps 400ms inside its first stage event, so the
    // drain lands while the job is mid-flight.
    let stalled = std::thread::spawn(move || {
        get(
            addr,
            "/job?design=firewire&arch=granular&variant=b&params=tiny&stall_ms=400",
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    daemon.shutdown();
    let summary = daemon.join();
    // The stalled connection got a response: either it finished its
    // stages before the cancel check, or it reports the cancellation.
    let (status, body) = stalled.join().unwrap().unwrap();
    assert_eq!(status, 200);
    assert!(
        fingerprint(&body).is_some() || body.contains("cancelled"),
        "drained job response: {body}"
    );
    assert!(summary.cache_valid, "cache must validate after drain");
    // And the daemon is gone: new connections are refused.
    assert!(get(addr, "/healthz").is_err());
}
