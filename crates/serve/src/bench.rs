//! The serve load harness (`vpga serve-bench`): hammer an in-process
//! daemon with a mixed stream of cache-hit / cache-miss / zero-deadline /
//! chaos-poisoned jobs over real HTTP connections, and assert that every
//! published fingerprint is bit-identical to the batch-mode reference
//! computed with [`vpga_flow::run_design`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vpga_core::PlbArchitecture;
use vpga_designs::{DesignParams, NamedDesign};
use vpga_flow::{run_design, FlowConfig, FlowVariant};

use crate::{client, spawn, DaemonConfig, DrainSummary};

/// Load-harness knobs.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Total jobs to submit.
    pub jobs: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Daemon cache byte budget (small budgets force eviction churn).
    pub cache_budget: usize,
    /// How many of the four designs to mix in (1–4); fewer designs keep
    /// the batch reference cheap for debug-mode test runs.
    pub designs: usize,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            jobs: 1000,
            clients: 8,
            cache_budget: 512 << 10,
            designs: 4,
        }
    }
}

/// What the harness observed.
#[derive(Clone, Copy, Debug)]
pub struct BenchReport {
    /// Jobs submitted.
    pub jobs: u64,
    /// Normal jobs that returned a fingerprint.
    pub completed: u64,
    /// Fingerprints that did NOT match the batch reference (must be 0).
    pub mismatched: u64,
    /// Zero-deadline jobs correctly rejected before stage 1.
    pub deadline_failed: u64,
    /// Poisoned jobs that errored or dropped (claim abandoned).
    pub poison_failed: u64,
    /// Poisoned jobs served from cache before the poison could fire
    /// (hits skip stages, so the chaos callback never runs).
    pub poison_survived: u64,
    /// 503 admission rejections that were retried.
    pub retried: u64,
    /// Responses that fit no expected shape (must be 0).
    pub unexpected: u64,
    /// The daemon's drain summary.
    pub drain: DrainSummary,
}

impl BenchReport {
    /// Checks every hard invariant the load test asserts: bit-identical
    /// fingerprints, zero unexplained responses, every zero-deadline job
    /// failed fast, a valid cache after drain, and bounded memory.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn verify(&self, cache_budget: usize) -> Result<(), String> {
        if self.mismatched != 0 {
            return Err(format!(
                "{} fingerprints diverged from the batch reference",
                self.mismatched
            ));
        }
        if self.unexpected != 0 {
            return Err(format!(
                "{} responses fit no expected shape",
                self.unexpected
            ));
        }
        if !self.drain.cache_valid {
            return Err("cache failed post-drain validation".to_owned());
        }
        let c = self.drain.cache;
        if c.bytes > cache_budget && c.entries > 1 {
            return Err(format!(
                "cache over budget after drain: {} bytes across {} entries (budget {})",
                c.bytes, c.entries, cache_budget
            ));
        }
        let accounted =
            self.completed + self.deadline_failed + self.poison_failed + self.poison_survived;
        if accounted != self.jobs {
            return Err(format!(
                "job accounting leak: {accounted} of {} jobs accounted for",
                self.jobs
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve-bench: {} jobs — {} completed, {} deadline-failed, \
             {} poisoned-failed, {} poisoned-survived, {} retried-503, \
             {} mismatched, {} unexpected",
            self.jobs,
            self.completed,
            self.deadline_failed,
            self.poison_failed,
            self.poison_survived,
            self.retried,
            self.mismatched,
            self.unexpected
        )?;
        write!(f, "{}", self.drain)
    }
}

struct Tally {
    completed: AtomicU64,
    mismatched: AtomicU64,
    deadline_failed: AtomicU64,
    poison_failed: AtomicU64,
    poison_survived: AtomicU64,
    retried: AtomicU64,
    unexpected: AtomicU64,
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Normal,
    Deadline,
    Poison,
}

/// Installs (once) a panic hook that silences the *expected* chaos-poison
/// panics the harness injects — the worker-side `catch_unwind` already
/// contains them; this only stops the default hook from spamming a
/// backtrace per poisoned job. Every other panic delegates to the
/// previous hook unchanged.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            if !msg.is_some_and(|m| m.starts_with("chaos poison")) {
                prev(info);
            }
        }));
    });
}

/// Runs the harness end to end: batch reference, daemon, client fleet,
/// graceful drain.
///
/// # Errors
///
/// An infrastructure failure (bind, thread spawn) — *not* an invariant
/// violation; call [`BenchReport::verify`] for those.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    silence_chaos_panics();
    let designs: Vec<NamedDesign> = NamedDesign::ALL
        .iter()
        .copied()
        .take(config.designs.clamp(1, NamedDesign::ALL.len()))
        .collect();
    let archs = [PlbArchitecture::granular(), PlbArchitecture::lut_based()];
    // Batch-mode reference fingerprints, computed without any cache.
    let mut reference: HashMap<(&'static str, String, FlowVariant), u64> = HashMap::new();
    for &design in &designs {
        let netlist = design.generate(&DesignParams::tiny());
        for arch in &archs {
            let out = run_design(&netlist, arch, &FlowConfig::default())
                .map_err(|e| format!("batch reference {}/{}: {e}", design.key(), arch.name()))?;
            reference.insert(
                (design.key(), arch.name().to_owned(), FlowVariant::A),
                out.flow_a.fingerprint(),
            );
            reference.insert(
                (design.key(), arch.name().to_owned(), FlowVariant::B),
                out.flow_b.fingerprint(),
            );
        }
    }
    let handle = spawn(DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        workers: config.clients.clamp(2, 8),
        queue_depth: 16,
        cache_budget: config.cache_budget,
        checkpoint_dir: None,
        chaos: true,
    })
    .map_err(|e| format!("daemon spawn: {e}"))?;
    let addr = handle.addr();
    let tally = Arc::new(Tally {
        completed: AtomicU64::new(0),
        mismatched: AtomicU64::new(0),
        deadline_failed: AtomicU64::new(0),
        poison_failed: AtomicU64::new(0),
        poison_survived: AtomicU64::new(0),
        retried: AtomicU64::new(0),
        unexpected: AtomicU64::new(0),
    });
    let reference = Arc::new(reference);
    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|tid| {
            let tally = Arc::clone(&tally);
            let reference = Arc::clone(&reference);
            let designs = designs.clone();
            let arch_names: Vec<String> = archs.iter().map(|a| a.name().to_owned()).collect();
            let (jobs, stride) = (config.jobs, config.clients.max(1));
            std::thread::spawn(move || {
                for i in (tid..jobs).step_by(stride) {
                    let design = designs[i % designs.len()];
                    let arch = &arch_names[(i / designs.len()) % 2];
                    let variant = if (i / (designs.len() * 2)).is_multiple_of(2) {
                        FlowVariant::A
                    } else {
                        FlowVariant::B
                    };
                    let mut path = format!(
                        "/job?design={}&arch={arch}&variant={}&params=tiny",
                        design.key(),
                        variant.key()
                    );
                    let kind = if i % 11 == 0 {
                        path.push_str("&deadline_ms=0");
                        Kind::Deadline
                    } else if i % 13 == 5 {
                        path.push_str("&poison=place");
                        Kind::Poison
                    } else if i % 17 == 9 {
                        path.push_str("&poison=result");
                        Kind::Poison
                    } else {
                        Kind::Normal
                    };
                    let response = loop {
                        match client::get(addr, &path) {
                            Ok((503, _)) => {
                                tally.retried.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            other => break other,
                        }
                    };
                    let expected = reference[&(design.key(), arch.clone(), variant)];
                    classify(&tally, kind, expected, &response);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().map_err(|_| "client thread panicked".to_owned())?;
    }
    handle.shutdown();
    let drain = handle.join();
    Ok(BenchReport {
        jobs: config.jobs as u64,
        completed: tally.completed.load(Ordering::Relaxed),
        mismatched: tally.mismatched.load(Ordering::Relaxed),
        deadline_failed: tally.deadline_failed.load(Ordering::Relaxed),
        poison_failed: tally.poison_failed.load(Ordering::Relaxed),
        poison_survived: tally.poison_survived.load(Ordering::Relaxed),
        retried: tally.retried.load(Ordering::Relaxed),
        unexpected: tally.unexpected.load(Ordering::Relaxed),
        drain,
    })
}

/// Files one response under the right counter, checking fingerprints
/// against the batch reference wherever one was published.
fn classify(
    tally: &Tally,
    kind: Kind,
    expected: u64,
    response: &Result<(u16, String), std::io::Error>,
) {
    let fingerprint = |body: &str| {
        body.lines()
            .find_map(|l| l.strip_prefix("fingerprint 0x"))
            .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
    };
    match (kind, response) {
        (Kind::Normal, Ok((200, body))) => match fingerprint(body) {
            Some(fp) if fp == expected => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
            }
            Some(_) => {
                tally.mismatched.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                tally.unexpected.fetch_add(1, Ordering::Relaxed);
            }
        },
        // A zero deadline must fail fast: an error line, no fingerprint,
        // no stage lines.
        (Kind::Deadline, Ok((200, body)))
            if body.contains("error ")
                && fingerprint(body).is_none()
                && !body.contains("stage ") =>
        {
            tally.deadline_failed.fetch_add(1, Ordering::Relaxed);
        }
        (Kind::Deadline, _) => {
            tally.unexpected.fetch_add(1, Ordering::Relaxed);
        }
        (Kind::Poison, Ok((200, body))) => match fingerprint(body) {
            // Served from cache before the chaos callback could fire —
            // the fingerprint must still be bit-identical.
            Some(fp) if fp == expected => {
                tally.poison_survived.fetch_add(1, Ordering::Relaxed);
            }
            Some(_) => {
                tally.mismatched.fetch_add(1, Ordering::Relaxed);
            }
            // Trapped panic (StagePanic error line) or a connection cut
            // mid-stream by the worker's panic isolation.
            None => {
                tally.poison_failed.fetch_add(1, Ordering::Relaxed);
            }
        },
        // A poison=result panic can kill the connection after the head
        // was written; the client then sees an IO error or a short body.
        (Kind::Poison, _) => {
            tally.poison_failed.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            tally.unexpected.fetch_add(1, Ordering::Relaxed);
        }
    }
}
