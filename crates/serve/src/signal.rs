//! SIGTERM → graceful drain, with no external crates: the handler is
//! registered through the libc `signal` symbol (already linked by std)
//! and does nothing but set an atomic flag, which is async-signal-safe.
//! The daemon's accept loop polls [`sigterm_seen`].

use std::sync::atomic::{AtomicBool, Ordering};

static SIGTERM: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM has been delivered (after
/// [`install_sigterm_handler`]) or [`raise_sigterm_flag`] was called.
pub fn sigterm_seen() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Sets the flag the handler would set — lets tests (and in-process
/// embedders) trigger the SIGTERM drain path without signalling the
/// whole process.
pub fn raise_sigterm_flag() {
    SIGTERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // Only an atomic store: async-signal-safe.
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler. Idempotent; call once at daemon start.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    const SIGTERM_NO: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: registering an async-signal-safe handler (a single atomic
    // store) for SIGTERM via the C `signal` entry point.
    unsafe {
        signal(SIGTERM_NO, on_sigterm);
    }
}

/// Installs the SIGTERM handler (no-op off unix).
#[cfg(not(unix))]
pub fn install_sigterm_handler() {}
