//! A deliberately tiny HTTP/1.1 surface: enough to parse `GET` request
//! lines and write close-delimited plain-text responses. The daemon
//! streams job progress, so responses carry `Connection: close` and no
//! `Content-Length` — the body ends when the socket does.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A parsed request line: method is always `GET` (anything else is
/// rejected at read time), `path` is the part before `?`, `query` after.
pub(crate) struct Request {
    pub(crate) path: String,
    pub(crate) query: String,
}

impl Request {
    /// Reads and parses the request head (up to 8 KiB, bounded by the
    /// caller's read timeout).
    pub(crate) fn read(stream: &mut TcpStream) -> io::Result<Request> {
        let mut buf = Vec::with_capacity(512);
        let mut chunk = [0u8; 512];
        loop {
            if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                break;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let head = String::from_utf8_lossy(&buf);
        let line = head
            .lines()
            .next()
            .ok_or_else(|| io::Error::other("empty request"))?;
        let mut parts = line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let target = parts
            .next()
            .ok_or_else(|| io::Error::other("no request target"))?;
        if method != "GET" {
            return Err(io::Error::other(format!("unsupported method {method}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        Ok(Request {
            path: path.to_owned(),
            query: query.to_owned(),
        })
    }
}

/// Parsed `k=v&k2=v2` query parameters (no percent-decoding; the job
/// vocabulary is plain identifiers).
pub(crate) struct Query {
    pairs: Vec<(String, String)>,
}

impl Query {
    pub(crate) fn parse(query: &str) -> Query {
        Query {
            pairs: query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_owned(), v.to_owned()),
                    None => (kv.to_owned(), String::new()),
                })
                .collect(),
        }
    }

    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn head(stream: &mut TcpStream, status: &str, extra: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nConnection: close\r\n{extra}\r\n"
    );
    let _ = stream.flush();
}

/// Writes a `200 OK` head; the caller streams the body.
pub(crate) fn head_200(stream: &mut TcpStream) {
    head(stream, "200 OK", "");
}

pub(crate) fn respond_200(stream: &mut TcpStream, body: &str) {
    head_200(stream);
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

pub(crate) fn respond_400(stream: &mut TcpStream, body: &str) {
    head(stream, "400 Bad Request", "");
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

pub(crate) fn respond_404(stream: &mut TcpStream, body: &str) {
    head(stream, "404 Not Found", "");
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// `503` with an optional `Retry-After` — the admission-control and
/// draining answer. Never buffers the connection.
pub(crate) fn respond_503(stream: &mut TcpStream, body: &str, retry_after: Option<u64>) {
    let extra = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    head(stream, "503 Service Unavailable", &extra);
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
