//! A minimal blocking HTTP client for the daemon's close-delimited
//! responses — used by `vpga submit`, the bench harness, and tests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issues `GET path` against `addr` and returns `(status, body)` once
/// the server closes the connection.
///
/// # Errors
///
/// Any socket error, or a malformed status line.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: vpga\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::other("response without header terminator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other("malformed status line"))?;
    Ok((status, body.to_owned()))
}
