//! A long-running flow daemon over the shared artifact cache.
//!
//! `vpga serve --listen ADDR` starts an HTTP/1.1 daemon that accepts flow
//! jobs — (design, arch, variant, params) plus per-job deadline — runs
//! them on [`vpga_flow::CachedFlow`], and streams per-stage progress back
//! as plain-text lines. The robustness envelope:
//!
//! - **Admission control.** Accepted connections enter a bounded queue; a
//!   full queue answers `503` with `Retry-After` instead of growing
//!   without bound. A fixed worker pool drains the queue.
//! - **Stage-granular dedup.** Jobs share front-ends and results through
//!   one content-addressed [`vpga_flow::ArtifactCache`] keyed by the
//!   normalized config⊕params fingerprint — including in-flight work.
//! - **Per-job deadlines and isolation.** `deadline_ms=0` fails before
//!   stage 1; worker panics are trapped per job; a poisoned job abandons
//!   its cache claim and never corrupts published artifacts.
//! - **Graceful drain.** `SIGTERM` (or `/shutdown`) stops accepting,
//!   answers queued-but-unstarted connections `503 draining`, cancels
//!   running jobs cooperatively at their next stage boundary (completed
//!   stages are already checkpointed when a disk tier is configured),
//!   then validates every cached artifact before reporting a
//!   [`DrainSummary`].
//!
//! Endpoints (all `GET`, `Connection: close`, close-delimited bodies):
//!
//! | path | effect |
//! |---|---|
//! | `/healthz` | liveness probe |
//! | `/stats` | job counters + cache counters |
//! | `/job?design=alu&arch=granular&variant=a&params=tiny` | run one job, stream progress |
//! | `/matrix?params=tiny` | run the full 16-cell matrix, print its fingerprint |
//! | `/shutdown` | begin graceful drain |
//!
//! `/job` also honours `deadline_ms=N`, and — only when the daemon runs
//! with chaos enabled (`--chaos`) — `poison=STAGE|result` (panic when the
//! named event arrives) and `stall_ms=N` (sleep in the first stage event;
//! lets tests land a drain mid-job).

#![warn(missing_docs)]

mod bench;
mod client;
mod http;
mod signal;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use client::get;
pub use signal::{install_sigterm_handler, raise_sigterm_flag, sigterm_seen};

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use vpga_designs::{DesignParams, NamedDesign};
use vpga_flow::service::{arch_by_name, pair_outcomes};
use vpga_flow::{
    faultpoint, ArtifactCache, CacheStats, CachedFlow, CancelToken, CheckpointStore, FlowConfig,
    FlowMatrix, FlowVariant, JobEvent, Matrix, ServiceJob,
};

use http::{Query, Request};

/// How to run a daemon.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Worker threads handling queued connections.
    pub workers: usize,
    /// Bounded connection-queue depth; beyond it, `503 Retry-After`.
    pub queue_depth: usize,
    /// Artifact-cache byte budget.
    pub cache_budget: usize,
    /// Optional disk checkpoint tier (survives daemon restarts).
    pub checkpoint_dir: Option<PathBuf>,
    /// Honour the `poison` / `stall_ms` chaos parameters.
    pub chaos: bool,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            cache_budget: 64 << 20,
            checkpoint_dir: None,
            chaos: false,
        }
    }
}

/// What the daemon reports after a graceful drain.
#[derive(Clone, Copy, Debug)]
pub struct DrainSummary {
    /// Connections admitted to the queue.
    pub accepted: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs that ended in an error (deadline, cancellation, panic, …).
    pub failed: u64,
    /// Connections rejected by admission control (`503 Retry-After`).
    pub rejected: u64,
    /// Queued connections refused with `503 draining` at drain time.
    pub refused_draining: u64,
    /// Final cache counters.
    pub cache: CacheStats,
    /// Every cached artifact re-validated against its digest post-drain.
    pub cache_valid: bool,
}

impl std::fmt::Display for DrainSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained: accepted={} completed={} failed={} rejected={} refused_draining={} \
             cache_valid={} cache[{}]",
            self.accepted,
            self.completed,
            self.failed,
            self.rejected,
            self.refused_draining,
            self.cache_valid,
            self.cache
        )
    }
}

struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    refused_draining: AtomicU64,
}

struct Shared {
    flow: CachedFlow,
    cache: Arc<ArtifactCache>,
    /// Cloned into every job's `FlowConfig.cancel`: drain cancels all
    /// running jobs cooperatively at their next stage boundary.
    drain: CancelToken,
    /// Set by `/shutdown`, [`DaemonHandle::shutdown`], or SIGTERM.
    stop: AtomicBool,
    /// Set once the accept loop exits; queued connections are refused.
    draining: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_depth: usize,
    counters: Counters,
    chaos: bool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || sigterm_seen()
    }
}

/// A running daemon: its bound address plus shutdown/join controls.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<DrainSummary>,
}

impl DaemonHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared artifact cache (inspection and validation in tests).
    pub fn cache(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Begins a graceful drain, exactly like SIGTERM.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Waits for the drain to finish.
    pub fn join(self) -> DrainSummary {
        self.thread.join().unwrap_or(DrainSummary {
            accepted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            refused_draining: 0,
            cache: CacheStats::default(),
            cache_valid: false,
        })
    }
}

/// Binds the listen address and starts the daemon (accept loop + worker
/// pool) on background threads.
///
/// # Errors
///
/// An [`io::Error`] if the address cannot be bound or threads cannot
/// spawn.
pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let cache = Arc::new(ArtifactCache::new(config.cache_budget));
    let mut flow = CachedFlow::with_cache(Arc::clone(&cache));
    if let Some(dir) = &config.checkpoint_dir {
        flow = flow.with_checkpoints(CheckpointStore::new(dir, true)?);
    }
    let shared = Arc::new(Shared {
        flow,
        cache,
        drain: CancelToken::new(),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_depth: config.queue_depth,
        counters: Counters {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            refused_draining: AtomicU64::new(0),
        },
        chaos: config.chaos,
    });
    let workers = config.workers.max(1);
    let main = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("vpga-serve".to_owned())
        .spawn(move || daemon_main(&listener, &main, workers))?;
    Ok(DaemonHandle {
        addr,
        shared,
        thread,
    })
}

/// Accept loop + drain sequence. Runs on the daemon thread.
fn daemon_main(listener: &TcpListener, shared: &Arc<Shared>, workers: usize) -> DrainSummary {
    let pool: Vec<_> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("vpga-serve-worker-{i}"))
                .spawn(move || worker_main(&shared))
                .expect("spawn worker")
        })
        .collect();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                // The serve_accept fault point models a transient accept
                // failure: the connection is dropped, nothing is queued.
                if faultpoint::fire("serve_accept", "accept").is_err() {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.len() >= shared.queue_depth {
                    drop(q);
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    // Read the request head first (bounded): closing with
                    // the request still unread would RST the connection
                    // and eat the 503 before the client can see it.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    let _ = http::Request::read(&mut stream);
                    http::respond_503(&mut stream, "queue full, retry later\n", Some(1));
                } else {
                    q.push_back(stream);
                    drop(q);
                    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Drain: refuse new work, cancel running jobs at their next stage
    // boundary, let workers finish writing responses. An injected
    // serve_drain fault must never prevent the drain itself.
    if let Err(e) = faultpoint::fire("serve_drain", "drain") {
        eprintln!("serve: drain fault injected (continuing drain): {e}");
    }
    shared.draining.store(true, Ordering::SeqCst);
    shared.drain.cancel();
    shared.queue_cv.notify_all();
    for w in pool {
        let _ = w.join();
    }
    let cache_valid = shared.cache.validate_all().is_ok();
    DrainSummary {
        accepted: shared.counters.accepted.load(Ordering::Relaxed),
        completed: shared.counters.completed.load(Ordering::Relaxed),
        failed: shared.counters.failed.load(Ordering::Relaxed),
        rejected: shared.counters.rejected.load(Ordering::Relaxed),
        refused_draining: shared.counters.refused_draining.load(Ordering::Relaxed),
        cache: shared.cache.stats(),
        cache_valid,
    }
}

/// One worker: pops queued connections and serves them until drained.
fn worker_main(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        if shared.draining.load(Ordering::SeqCst) {
            shared
                .counters
                .refused_draining
                .fetch_add(1, Ordering::Relaxed);
            http::respond_503(&mut stream, "draining\n", None);
            continue;
        }
        // Per-connection panic isolation: a panic (chaos poison escaping
        // past the flow's own catch_unwind, or a daemon bug) kills this
        // job only — the connection drops, the worker lives on.
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_conn(shared, &mut stream)));
        match outcome {
            Ok(Fate::Completed) => {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Fate::Failed) | Err(_) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Fate::Control) => {}
        }
    }
}

/// How a connection ended, for the daemon's counters.
enum Fate {
    /// A job ran to a result.
    Completed,
    /// A job errored (deadline, cancellation, panic, bad request).
    Failed,
    /// A non-job endpoint (health, stats, shutdown, 404).
    Control,
}

fn handle_conn(shared: &Shared, stream: &mut TcpStream) -> Fate {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let req = match Request::read(stream) {
        Ok(req) => req,
        Err(e) => {
            http::respond_400(stream, &format!("bad request: {e}\n"));
            return Fate::Failed;
        }
    };
    match req.path.as_str() {
        "/healthz" => {
            http::respond_200(stream, "ok\n");
            Fate::Control
        }
        "/stats" => {
            let c = &shared.counters;
            let body = format!(
                "accepted={} completed={} failed={} rejected={} refused_draining={}\ncache {}\n",
                c.accepted.load(Ordering::Relaxed),
                c.completed.load(Ordering::Relaxed),
                c.failed.load(Ordering::Relaxed),
                c.rejected.load(Ordering::Relaxed),
                c.refused_draining.load(Ordering::Relaxed),
                shared.cache.stats(),
            );
            http::respond_200(stream, &body);
            Fate::Control
        }
        "/shutdown" => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            http::respond_200(stream, "draining\n");
            Fate::Control
        }
        "/job" => handle_job(shared, stream, &req.query),
        "/matrix" => handle_matrix(shared, stream, &req.query),
        other => {
            http::respond_404(stream, &format!("no such endpoint {other}\n"));
            Fate::Control
        }
    }
}

fn parse_params(q: &Query) -> Result<DesignParams, String> {
    match q.get("params").unwrap_or("tiny") {
        "tiny" => Ok(DesignParams::tiny()),
        "small" => Ok(DesignParams::small()),
        "paper" => Ok(DesignParams::paper()),
        other => Err(format!("unknown params {other:?} (tiny|small|paper)")),
    }
}

fn parse_job(shared: &Shared, q: &Query) -> Result<ServiceJob, String> {
    let design_key = q.get("design").ok_or("missing design")?;
    let design = *NamedDesign::ALL
        .iter()
        .find(|d| d.key() == design_key)
        .ok_or_else(|| format!("unknown design {design_key:?}"))?;
    let arch_name = q.get("arch").ok_or("missing arch")?;
    let arch = arch_by_name(arch_name).ok_or_else(|| format!("unknown arch {arch_name:?}"))?;
    let variant = match q.get("variant").ok_or("missing variant")? {
        "a" => FlowVariant::A,
        "b" => FlowVariant::B,
        other => return Err(format!("unknown variant {other:?} (a|b)")),
    };
    let params = parse_params(q)?;
    let mut config = FlowConfig {
        cancel: shared.drain.clone(),
        ..FlowConfig::default()
    };
    if let Some(ms) = q.get("deadline_ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad deadline_ms {ms:?}"))?;
        config.deadline = Some(Duration::from_millis(ms));
    }
    Ok(ServiceJob {
        design,
        arch,
        variant,
        params,
        config,
    })
}

fn handle_job(shared: &Shared, stream: &mut TcpStream, query: &str) -> Fate {
    let q = Query::parse(query);
    let job = match parse_job(shared, &q) {
        Ok(job) => job,
        Err(e) => {
            http::respond_400(stream, &format!("{e}\n"));
            return Fate::Failed;
        }
    };
    let poison = if shared.chaos { q.get("poison") } else { None };
    let stall = if shared.chaos {
        q.get("stall_ms").and_then(|s| s.parse::<u64>().ok())
    } else {
        None
    };
    http::head_200(stream);
    let mut stalled = false;
    let outcome = shared.flow.run_job(&job, &mut |e| match e {
        JobEvent::Stage {
            stage,
            wall,
            cells,
            nets,
        } => {
            let _ = writeln!(
                stream,
                "stage {stage} wall_ms={} cells={cells} nets={nets}",
                wall.as_millis()
            );
            let _ = stream.flush();
            if let Some(ms) = stall {
                if !stalled {
                    stalled = true;
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
            if poison == Some(stage.name()) {
                panic!("chaos poison at {stage}");
            }
        }
        JobEvent::Front { hit } => {
            let _ = writeln!(stream, "front hit={hit}");
            let _ = stream.flush();
        }
        JobEvent::Result { hit } => {
            let _ = writeln!(stream, "result hit={hit}");
            let _ = stream.flush();
            if poison == Some("result") {
                panic!("chaos poison at result");
            }
        }
    });
    match outcome {
        Ok(out) => {
            let _ = writeln!(stream, "fingerprint {:#018x}", out.fingerprint());
            let _ = writeln!(
                stream,
                "done design={} arch={} variant={} front_hit={} result_hit={}",
                out.design_key,
                out.arch,
                job.variant.key(),
                out.front_cache_hit,
                out.result_cache_hit
            );
            Fate::Completed
        }
        Err(e) => {
            let _ = writeln!(stream, "error {e}");
            Fate::Failed
        }
    }
}

fn handle_matrix(shared: &Shared, stream: &mut TcpStream, query: &str) -> Fate {
    let q = Query::parse(query);
    let params = match parse_params(&q) {
        Ok(p) => p,
        Err(e) => {
            http::respond_400(stream, &format!("{e}\n"));
            return Fate::Failed;
        }
    };
    http::head_200(stream);
    let mut outcomes = Vec::new();
    let mut hits = 0usize;
    let jobs = FlowMatrix::full();
    let total = jobs.jobs().len() * 2;
    for job in jobs.jobs() {
        let job = ServiceJob {
            design: job.design,
            arch: job.arch.clone(),
            variant: job.variant,
            params: params.clone(),
            config: FlowConfig {
                cancel: shared.drain.clone(),
                ..FlowConfig::default()
            },
        };
        match shared.flow.run_job(&job, &mut |_| {}) {
            Ok(out) => {
                hits += usize::from(out.front_cache_hit) + usize::from(out.result_cache_hit);
                let _ = writeln!(
                    stream,
                    "cell {}/{}/{} fingerprint={:#018x} front_hit={} result_hit={}",
                    out.design_key,
                    out.arch,
                    job.variant.key(),
                    out.fingerprint(),
                    out.front_cache_hit,
                    out.result_cache_hit
                );
                let _ = stream.flush();
                outcomes.push(out);
            }
            Err(e) => {
                let _ = writeln!(stream, "error {} {e}", job.ctx());
                return Fate::Failed;
            }
        }
    }
    let matrix = Matrix::from_outcomes(pair_outcomes(&outcomes));
    let _ = writeln!(stream, "cache hits={hits}/{total}");
    let _ = writeln!(stream, "matrix fingerprint: {:#018x}", matrix.fingerprint());
    Fate::Completed
}
