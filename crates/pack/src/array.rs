//! The legalized PLB array.

use std::error::Error;
use std::fmt;

use vpga_core::{PlbArchitecture, PlbInstance, SlotSet};
use vpga_netlist::{CellClass, CellId};

/// Errors raised while sizing or filling a PLB array.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PackError {
    /// The design demands more slots of a class than any array the packer
    /// is willing to build provides.
    CapacityExceeded {
        /// The resource class that overflowed.
        class: CellClass,
        /// Slots demanded.
        demand: usize,
        /// Slots available in the largest attempted array.
        available: usize,
    },
    /// A compaction group demands more slots than a single PLB offers.
    GroupTooLarge {
        /// The group's demand.
        demand: SlotSet,
    },
    /// Packing failed to seat every item even after growing the array.
    Unpackable {
        /// Items left unseated in the final attempt.
        leftover: usize,
    },
    /// `target_fill` outside `(0, 1]` — the array-sizing bound is
    /// undefined.
    InvalidTargetFill(f64),
    /// The netlist references a library cell the architecture's library
    /// does not contain (netlist mapped against a different library).
    ForeignCell {
        /// The offending netlist cell's name.
        cell: String,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::CapacityExceeded {
                class,
                demand,
                available,
            } => write!(
                f,
                "demand of {demand} {class} slots exceeds the {available} available"
            ),
            PackError::GroupTooLarge { demand } => {
                write!(f, "group demand {demand} does not fit a single PLB")
            }
            PackError::Unpackable { leftover } => {
                write!(f, "{leftover} items could not be seated in the array")
            }
            PackError::InvalidTargetFill(t) => {
                write!(f, "target_fill {t} outside (0, 1]")
            }
            PackError::ForeignCell { cell } => write!(
                f,
                "cell {cell:?} references a library cell outside the architecture's library"
            ),
        }
    }
}

impl Error for PackError {}

/// A cols × rows array of PLBs with cell assignments — the output of the
/// legalization step and the layout substrate of flow b.
#[derive(Clone, Debug)]
pub struct PlbArray {
    arch_name: String,
    plb_area: f64,
    cols: usize,
    rows: usize,
    plbs: Vec<PlbInstance>,
    /// Dense maps keyed by [`CellId::index`], grown on demand.
    /// `u32::MAX` / `0xff` mark unassigned — sentinel Vecs instead of
    /// hash maps keep lookups in the swap hot loop cache-friendly and
    /// iteration order a non-question.
    assignment: Vec<u32>,
    slot_class: Vec<u8>,
    num_assigned: usize,
}

impl PlbArray {
    /// Creates an empty array of the given dimensions.
    pub fn new(arch: &PlbArchitecture, cols: usize, rows: usize) -> PlbArray {
        PlbArray {
            arch_name: arch.name().to_owned(),
            plb_area: arch.area(),
            cols,
            rows,
            plbs: (0..cols * rows).map(|_| PlbInstance::new(arch)).collect(),
            assignment: Vec::new(),
            slot_class: Vec::new(),
            num_assigned: 0,
        }
    }

    /// The architecture's name.
    pub fn arch_name(&self) -> &str {
        &self.arch_name
    }

    /// Array width in PLBs.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Array height in PLBs.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PLBs.
    pub fn len(&self) -> usize {
        self.plbs.len()
    }

    /// True if the array has no PLBs.
    pub fn is_empty(&self) -> bool {
        self.plbs.is_empty()
    }

    /// Edge length of one (square) PLB tile, µm.
    pub fn plb_pitch(&self) -> f64 {
        self.plb_area.sqrt()
    }

    /// Total die area of the array, µm² — the flow-b area metric.
    pub fn die_area(&self) -> f64 {
        self.plb_area * self.plbs.len() as f64
    }

    /// The PLB at grid position `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn plb(&self, col: usize, row: usize) -> &PlbInstance {
        &self.plbs[row * self.cols + col]
    }

    /// Mutable access by linear index.
    pub(crate) fn plb_mut(&mut self, index: usize) -> &mut PlbInstance {
        &mut self.plbs[index]
    }

    /// Linear index of grid position `(col, row)`.
    pub fn index_of(&self, col: usize, row: usize) -> usize {
        row * self.cols + col
    }

    /// Grid position of a linear index.
    pub fn position_of(&self, index: usize) -> (usize, usize) {
        (index % self.cols, index / self.cols)
    }

    /// Centre coordinates of a PLB, µm.
    pub fn plb_center(&self, index: usize) -> (f64, f64) {
        let (c, r) = self.position_of(index);
        let p = self.plb_pitch();
        ((c as f64 + 0.5) * p, (r as f64 + 0.5) * p)
    }

    /// Records that `cell` lives in PLB `index`.
    pub(crate) fn assign(&mut self, cell: CellId, index: usize) {
        let at = cell.index();
        if at >= self.assignment.len() {
            self.assignment.resize(at + 1, u32::MAX);
        }
        if self.assignment[at] == u32::MAX {
            self.num_assigned += 1;
        }
        self.assignment[at] = index as u32;
    }

    /// Records the slot class `cell` occupies (set at seating time; swaps
    /// move whole PLB contents, so the class never changes afterwards).
    pub(crate) fn set_slot_class(&mut self, cell: CellId, class: CellClass) {
        let at = cell.index();
        if at >= self.slot_class.len() {
            self.slot_class.resize(at + 1, u8::MAX);
        }
        self.slot_class[at] = crate::arena::class_idx(class);
    }

    /// The PLB a cell was packed into.
    pub fn plb_of(&self, cell: CellId) -> Option<usize> {
        match self.assignment.get(cell.index()) {
            Some(&ix) if ix != u32::MAX => Some(ix as usize),
            _ => None,
        }
    }

    /// The slot class a cell occupies (may differ from its native class
    /// when the §3.2 flexible retargeting was used).
    pub fn slot_class_of(&self, cell: CellId) -> Option<CellClass> {
        match self.slot_class.get(cell.index()) {
            Some(&k) if k != u8::MAX => Some(CellClass::PLB_CLASSES[k as usize]),
            _ => None,
        }
    }

    /// Number of assigned cells.
    pub fn num_assigned(&self) -> usize {
        self.num_assigned
    }

    /// Number of PLBs with at least one occupied slot.
    pub fn plbs_used(&self) -> usize {
        self.plbs.iter().filter(|p| !p.is_empty()).count()
    }

    /// Mean slot utilization over all PLBs.
    pub fn mean_utilization(&self) -> f64 {
        if self.plbs.is_empty() {
            return 0.0;
        }
        self.plbs.iter().map(|p| p.utilization()).sum::<f64>() / self.plbs.len() as f64
    }

    /// Iterates `(linear index, plb)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &PlbInstance)> {
        self.plbs.iter().enumerate()
    }
}

impl fmt::Display for PlbArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}×{} array of {:?} PLBs: {} cells in {} PLBs ({:.0} % mean fill), die {:.0} µm²",
            self.cols,
            self.rows,
            self.arch_name,
            self.num_assigned(),
            self.plbs_used(),
            100.0 * self.mean_utilization(),
            self.die_area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_roundtrips() {
        let arch = PlbArchitecture::granular();
        let a = PlbArray::new(&arch, 4, 3);
        assert_eq!(a.len(), 12);
        assert_eq!(a.position_of(a.index_of(2, 1)), (2, 1));
        let (x, y) = a.plb_center(0);
        assert!(x > 0.0 && y > 0.0);
        assert!((a.die_area() - 12.0 * arch.area()).abs() < 1e-9);
    }

    #[test]
    fn assignment_tracking() {
        let arch = PlbArchitecture::lut_based();
        let mut a = PlbArray::new(&arch, 2, 2);
        let cell = CellId::from_index(7);
        assert_eq!(a.plb_of(cell), None);
        a.assign(cell, 3);
        assert_eq!(a.plb_of(cell), Some(3));
        assert_eq!(a.num_assigned(), 1);
        assert_eq!(a.plbs_used(), 0, "assignment alone does not occupy slots");
    }

    #[test]
    fn error_display() {
        let e = PackError::CapacityExceeded {
            class: CellClass::Dff,
            demand: 10,
            available: 4,
        };
        assert!(e.to_string().contains("DFF"));
    }
}
