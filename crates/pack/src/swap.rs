//! PLB-level detailed placement: simulated-annealing swaps of whole PLB
//! contents after packing.
//!
//! Legalization quantizes the ASIC placement to PLB centres, which costs
//! wirelength. Because every PLB of the array has identical capacity,
//! exchanging the *entire contents* of two PLBs is always legal, so a
//! cheap annealer over whole-PLB swaps recovers much of the loss — the
//! array-side half of the §3.1 "minimize perturbation" objective.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpga_netlist::{CellId, NetId, Netlist};
use vpga_place::Placement;

use crate::array::PlbArray;

/// Tunables for [`swap_optimize`].
#[derive(Clone, Debug)]
pub struct SwapConfig {
    /// RNG seed.
    pub seed: u64,
    /// Swap attempts per PLB per temperature step.
    pub moves_per_plb: usize,
    /// Per-net weights (timing criticality); `None` = uniform.
    pub net_weights: Option<Vec<f64>>,
}

impl Default for SwapConfig {
    fn default() -> SwapConfig {
        SwapConfig {
            seed: 11,
            moves_per_plb: 6,
            net_weights: None,
        }
    }
}

/// Mover/acceptance counters and cost bookkeeping from one PLB-swap
/// anneal — the per-stage instrumentation the flow executor reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwapStats {
    /// Swap attempts (pairs drawn, excluding p == q draws).
    pub moves_attempted: u64,
    /// Accepted swaps.
    pub moves_accepted: u64,
    /// Temperature rounds run.
    pub rounds: u32,
    /// Weighted-HPWL cost before swapping.
    pub cost_initial: f64,
    /// Weighted-HPWL cost after swapping.
    pub cost_final: f64,
}

/// Anneals whole-PLB content swaps to minimize (criticality-weighted)
/// wirelength; updates both the array's assignments and the placement's
/// positions. Returns the fractional wirelength reduction achieved.
///
/// # Panics
///
/// Panics if `placement` has not been updated to the array (run
/// [`crate::apply_to_placement`] first).
pub fn swap_optimize(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> f64 {
    swap_optimize_with_stats(array, netlist, placement, config).0
}

/// [`swap_optimize`], also returning the annealer's [`SwapStats`].
///
/// # Panics
///
/// Panics if `placement` has not been updated to the array (run
/// [`crate::apply_to_placement`] first).
pub fn swap_optimize_with_stats(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> (f64, SwapStats) {
    let mut stats = SwapStats::default();
    let n_plbs = array.len();
    if n_plbs < 2 {
        return (0.0, stats);
    }
    // Cells per PLB.
    let mut cells_of: Vec<Vec<CellId>> = vec![Vec::new(); n_plbs];
    for (id, cell) in netlist.cells() {
        if cell.lib_id().is_none() {
            continue;
        }
        if let Some(ix) = array.plb_of(id) {
            cells_of[ix].push(id);
        }
    }
    // Net weights and incidence.
    let mut weights = vec![1.0f64; netlist.net_capacity()];
    if let Some(w) = &config.net_weights {
        for (i, &v) in w.iter().enumerate().take(weights.len()) {
            weights[i] = v;
        }
    }
    let mut cell_nets: Vec<Vec<NetId>> = vec![Vec::new(); netlist.cell_capacity()];
    for net in netlist.nets() {
        if let Some(d) = netlist.driver(net) {
            cell_nets[d.index()].push(net);
        }
        for &(sink, _) in netlist.sinks(net) {
            cell_nets[sink.index()].push(net);
        }
    }
    for nets in cell_nets.iter_mut() {
        nets.sort_unstable();
        nets.dedup();
    }
    let cost_of = |placement: &Placement, net: NetId| -> f64 {
        weights[net.index()] * placement.net_hpwl(netlist, net)
    };
    let mut net_cost: Vec<f64> = (0..netlist.net_capacity())
        .map(|i| cost_of(placement, NetId::from_index(i)))
        .collect();
    let initial: f64 = net_cost.iter().sum();
    stats.cost_initial = initial;
    stats.cost_final = initial;
    if initial <= 0.0 {
        return (0.0, stats);
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut t = initial / n_plbs as f64; // gentle start
    let moves = config.moves_per_plb * n_plbs;
    let mut current = initial;
    let mut best_cost = initial;
    let mut best_state = cells_of.clone();
    for round in 0..72 {
        let greedy = round >= 60; // zero-temperature tail
        let mut accepted = 0usize;
        for _ in 0..moves {
            let p = rng.gen_range(0..n_plbs);
            let q = rng.gen_range(0..n_plbs);
            if p == q {
                continue;
            }
            stats.moves_attempted += 1;
            // Affected nets.
            let mut nets: Vec<NetId> = Vec::new();
            for &cell in cells_of[p].iter().chain(&cells_of[q]) {
                nets.extend(cell_nets[cell.index()].iter().copied());
            }
            nets.sort_unstable();
            nets.dedup();
            let before: f64 = nets.iter().map(|n| net_cost[n.index()]).sum();
            seat_cells(array, placement, &cells_of[p], q);
            seat_cells(array, placement, &cells_of[q], p);
            let after: f64 = nets.iter().map(|&n| cost_of(placement, n)).sum();
            let delta = after - before;
            let accept = if greedy {
                delta < 0.0
            } else {
                delta <= 0.0 || rng.gen::<f64>() < (-delta / t.max(1e-9)).exp()
            };
            if accept {
                for &n in &nets {
                    net_cost[n.index()] = cost_of(placement, n);
                }
                cells_of.swap(p, q);
                current += delta;
                accepted += 1;
                if current < best_cost {
                    best_cost = current;
                    best_state = cells_of.clone();
                }
            } else {
                // Revert: each cell list returns to its home PLB.
                seat_cells(array, placement, &cells_of[p], p);
                seat_cells(array, placement, &cells_of[q], q);
            }
        }
        stats.moves_accepted += accepted as u64;
        stats.rounds += 1;
        t *= 0.85;
        if greedy && accepted == 0 {
            break;
        }
    }
    // Restore the best configuration seen.
    if current > best_cost {
        for (ix, cells) in best_state.iter().enumerate() {
            seat_cells(array, placement, cells, ix);
        }
    }
    let final_cost: f64 = best_cost.min(current);
    let real: f64 = (0..netlist.net_capacity())
        .map(|i| cost_of(placement, NetId::from_index(i)))
        .sum();
    debug_assert!(
        (final_cost - real).abs() < 1e-6 * real.max(1.0) + 1e-6,
        "incremental cost drift: tracked {final_cost} vs real {real}"
    );
    stats.cost_final = final_cost;
    (1.0 - final_cost / initial, stats)
}

/// Seats a list of cells in PLB `ix` (position + assignment). Occupancy
/// stays consistent because whole-PLB contents move wholesale and every PLB
/// has identical capacity; the PlbInstance occupancy tables are only
/// consulted during packing.
fn seat_cells(array: &mut PlbArray, placement: &mut Placement, cells: &[CellId], ix: usize) {
    let (x, y) = array.plb_center(ix);
    for &cell in cells {
        placement.set_position(cell, x, y);
        array.assign(cell, ix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrisect::{apply_to_placement, pack, PackConfig};
    use vpga_core::PlbArchitecture;
    use vpga_netlist::library::generic;
    use vpga_place::PlaceConfig;

    #[test]
    fn swapping_reduces_wirelength_after_packing() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let design = vpga_designs::NamedDesign::Alu.generate(&vpga_designs::DesignParams::tiny());
        let mapped = vpga_synth::map_netlist_fast(&design, &src, &arch).unwrap();
        let mut placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let mut array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &mapped, &mut placement);
        let before = placement.total_hpwl(&mapped);
        let gain = swap_optimize(&mut array, &mapped, &mut placement, &SwapConfig::default());
        let after = placement.total_hpwl(&mapped);
        assert!(
            after <= before + 1e-6,
            "swap must not worsen: {before} → {after}"
        );
        assert!(gain >= 0.0);
        // Assignments stay consistent with positions.
        for (id, cell) in mapped.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            let ix = array.plb_of(id).expect("assigned");
            assert_eq!(placement.position(id), Some(array.plb_center(ix)));
        }
    }

    #[test]
    fn single_plb_arrays_are_a_noop() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let mut n = vpga_netlist::Netlist::new("one");
        let a = n.add_input("a");
        let g = n.add_lib_cell("g", &src, "INV", &[a]).unwrap();
        n.add_output("y", g);
        let mapped = vpga_synth::map_netlist_fast(&n, &src, &arch).unwrap();
        let mut placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let mut array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &mapped, &mut placement);
        let gain = swap_optimize(&mut array, &mapped, &mut placement, &SwapConfig::default());
        assert_eq!(gain, 0.0);
    }
}
