//! PLB-level detailed placement: simulated-annealing swaps of whole PLB
//! contents after packing.
//!
//! Legalization quantizes the ASIC placement to PLB centres, which costs
//! wirelength. Because every PLB of the array has identical capacity,
//! exchanging the *entire contents* of two PLBs is always legal, so a
//! cheap annealer over whole-PLB swaps recovers much of the loss — the
//! array-side half of the §3.1 "minimize perturbation" objective.
//!
//! The default engine evaluates each swap in O(touched nets) against
//! cached per-net bounding boxes with boundary-pin counts (the same
//! structure as the placement annealer's incremental cost): moving a pin
//! extends the box in place, and only when the last pin on a boundary
//! vacates is the net's pin list rescanned. A journal of first-touch
//! snapshots rolls rejected moves back. Accept decisions, RNG consumption,
//! and every cost in between are bit-identical to the direct
//! recompute-over-the-placement formulation, which is retained as
//! [`SwapConfig::delta_cost`]` = false` and serves as the oracle in the
//! equivalence tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpga_netlist::{CellId, CellKind, NetId, Netlist};
use vpga_place::Placement;

use crate::array::PlbArray;

/// Tunables for [`swap_optimize`].
#[derive(Clone, Debug)]
pub struct SwapConfig {
    /// RNG seed.
    pub seed: u64,
    /// Swap attempts per PLB per temperature step.
    pub moves_per_plb: usize,
    /// Per-net weights (timing criticality); `None` = uniform.
    pub net_weights: Option<Vec<f64>>,
    /// Evaluate swaps against cached per-net bounding boxes instead of
    /// recomputing HPWL from the placement. Results are bit-identical
    /// either way; the switch exists for the equivalence tests.
    pub delta_cost: bool,
}

impl Default for SwapConfig {
    fn default() -> SwapConfig {
        SwapConfig {
            seed: 11,
            moves_per_plb: 6,
            net_weights: None,
            delta_cost: true,
        }
    }
}

/// Mover/acceptance counters and cost bookkeeping from one PLB-swap
/// anneal — the per-stage instrumentation the flow executor reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwapStats {
    /// Swap attempts (pairs drawn, excluding p == q draws).
    pub moves_attempted: u64,
    /// Accepted swaps.
    pub moves_accepted: u64,
    /// Temperature rounds run.
    pub rounds: u32,
    /// Weighted-HPWL cost before swapping.
    pub cost_initial: f64,
    /// Weighted-HPWL cost after swapping.
    pub cost_final: f64,
    /// Net evaluations answered by an incremental bounding-box update
    /// (delta engine only).
    pub delta_evals: u64,
    /// Net evaluations that fell back to a full pin rescan because the
    /// last pin on a box boundary vacated (delta engine only).
    pub bbox_rescans: u64,
}

/// Anneals whole-PLB content swaps to minimize (criticality-weighted)
/// wirelength; updates both the array's assignments and the placement's
/// positions. Returns the fractional wirelength reduction achieved.
///
/// # Panics
///
/// Panics if `placement` has not been updated to the array (run
/// [`crate::apply_to_placement`] first).
pub fn swap_optimize(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> f64 {
    swap_optimize_with_stats(array, netlist, placement, config).0
}

/// [`swap_optimize`], also returning the annealer's [`SwapStats`].
///
/// # Panics
///
/// Panics if `placement` has not been updated to the array (run
/// [`crate::apply_to_placement`] first).
pub fn swap_optimize_with_stats(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> (f64, SwapStats) {
    if config.delta_cost {
        swap_delta(array, netlist, placement, config)
    } else {
        swap_legacy(array, netlist, placement, config)
    }
}

/// Cached bounding box of one tracked net: extents plus the number of pin
/// occurrences sitting exactly on each boundary. `dirty` marks a vacated
/// boundary; the box is rebuilt from the pin list before it is next read.
#[derive(Clone, Copy)]
struct NetBox {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
    n_min_x: u32,
    n_max_x: u32,
    n_min_y: u32,
    n_max_y: u32,
    dirty: bool,
}

/// The delta-cost evaluation state: dense pin positions, per-net cached
/// boxes and costs, the cell → net reference CSR, and the first-touch
/// rollback journal.
struct Engine {
    weights: Vec<f64>,
    /// Cost per net (all nets; only tracked ones are ever rewritten) —
    /// mirrors the legacy engine's `net_cost` cache.
    net_cost: Vec<f64>,
    /// Pin positions by cell index (movable cells and static port pins).
    pos_x: Vec<f64>,
    pos_y: Vec<f64>,
    /// Tracked nets (active HPWL, at least one movable pin): net index →
    /// tracked id and back.
    net_tid: Vec<u32>,
    tid_net: Vec<u32>,
    /// Placed pins per tracked net, CSR, deduplicated cells with
    /// occurrence multiplicity.
    pin_off: Vec<u32>,
    pin_cell: Vec<u32>,
    pin_mult: Vec<u32>,
    /// Tracked nets referenced per movable cell, CSR, with that cell's
    /// pin multiplicity on the net.
    ref_off: Vec<u32>,
    ref_tid: Vec<u32>,
    ref_mult: Vec<u32>,
    boxes: Vec<NetBox>,
    /// Attempt stamp per tracked net, and the journal of (tid, box, cost)
    /// snapshots taken at first touch within an attempt.
    stamp: Vec<u32>,
    journal: Vec<(u32, NetBox, f64)>,
}

impl Engine {
    /// Rebuilds one net's box from its pin list.
    fn rescan(&mut self, tid: usize) {
        let lo = self.pin_off[tid] as usize;
        let hi = self.pin_off[tid + 1] as usize;
        let mut b = NetBox {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
            n_min_x: 0,
            n_max_x: 0,
            n_min_y: 0,
            n_max_y: 0,
            dirty: false,
        };
        for i in lo..hi {
            let c = self.pin_cell[i] as usize;
            let m = self.pin_mult[i];
            let (x, y) = (self.pos_x[c], self.pos_y[c]);
            if x < b.min_x {
                b.min_x = x;
                b.n_min_x = m;
            } else if x == b.min_x {
                b.n_min_x += m;
            }
            if x > b.max_x {
                b.max_x = x;
                b.n_max_x = m;
            } else if x == b.max_x {
                b.n_max_x += m;
            }
            if y < b.min_y {
                b.min_y = y;
                b.n_min_y = m;
            } else if y == b.min_y {
                b.n_min_y += m;
            }
            if y > b.max_y {
                b.max_y = y;
                b.n_max_y = m;
            } else if y == b.max_y {
                b.n_max_y += m;
            }
        }
        self.boxes[tid] = b;
    }

    /// Moves one pin cell, updating every referencing net's box in place
    /// (journaling each net's pre-attempt state at first touch).
    fn move_cell(&mut self, c: usize, nx: f64, ny: f64, cur: u32) {
        let (ox, oy) = (self.pos_x[c], self.pos_y[c]);
        let lo = self.ref_off[c] as usize;
        let hi = self.ref_off[c + 1] as usize;
        for r in lo..hi {
            let tid = self.ref_tid[r] as usize;
            let mult = self.ref_mult[r];
            if self.stamp[tid] != cur {
                self.stamp[tid] = cur;
                self.journal.push((
                    tid as u32,
                    self.boxes[tid],
                    self.net_cost[self.tid_net[tid] as usize],
                ));
            }
            let b = &mut self.boxes[tid];
            if b.dirty {
                continue; // rebuilt from the pin list before the next read
            }
            // Vacate the old position from any boundary it sat on.
            if ox == b.min_x {
                b.n_min_x -= mult;
            }
            if ox == b.max_x {
                b.n_max_x -= mult;
            }
            if oy == b.min_y {
                b.n_min_y -= mult;
            }
            if oy == b.max_y {
                b.n_max_y -= mult;
            }
            if b.n_min_x == 0 || b.n_max_x == 0 || b.n_min_y == 0 || b.n_max_y == 0 {
                // Last pin on a boundary left: the new extent is unknown
                // without a rescan.
                b.dirty = true;
                continue;
            }
            // Extend with the new position (exact: min/max over a
            // multiset commutes with insertion).
            if nx < b.min_x {
                b.min_x = nx;
                b.n_min_x = mult;
            } else if nx == b.min_x {
                b.n_min_x += mult;
            }
            if nx > b.max_x {
                b.max_x = nx;
                b.n_max_x = mult;
            } else if nx == b.max_x {
                b.n_max_x += mult;
            }
            if ny < b.min_y {
                b.min_y = ny;
                b.n_min_y = mult;
            } else if ny == b.min_y {
                b.n_min_y += mult;
            }
            if ny > b.max_y {
                b.max_y = ny;
                b.n_max_y = mult;
            } else if ny == b.max_y {
                b.n_max_y += mult;
            }
        }
        self.pos_x[c] = nx;
        self.pos_y[c] = ny;
    }

    /// Restores every journaled net and clears the journal.
    fn rollback(&mut self) {
        while let Some((tid, b, cost)) = self.journal.pop() {
            self.net_cost[self.tid_net[tid as usize] as usize] = cost;
            self.boxes[tid as usize] = b;
        }
    }
}

/// Merges two sorted, deduplicated id lists into `out` (sorted,
/// deduplicated).
fn merge_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// The delta-cost engine. Nets with a statically zero cost (no driver, a
/// constant driver, fewer than two placed pins, or no movable pin) are
/// excluded from the per-attempt sums; with the non-negative weights the
/// flow supplies they contribute exactly `+0.0` to the legacy engine's
/// sums, which is the additive identity at every partial sum the legacy
/// engine forms, so the two engines' deltas agree bit-for-bit.
fn swap_delta(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> (f64, SwapStats) {
    let mut stats = SwapStats::default();
    let n_plbs = array.len();
    if n_plbs < 2 {
        return (0.0, stats);
    }
    // Cells per PLB.
    let mut cells_of: Vec<Vec<CellId>> = vec![Vec::new(); n_plbs];
    for (id, cell) in netlist.cells() {
        if cell.lib_id().is_none() {
            continue;
        }
        if let Some(ix) = array.plb_of(id) {
            cells_of[ix].push(id);
        }
    }
    let mut weights = vec![1.0f64; netlist.net_capacity()];
    if let Some(w) = &config.net_weights {
        for (i, &v) in w.iter().enumerate().take(weights.len()) {
            weights[i] = v;
        }
    }
    let net_cost: Vec<f64> = (0..netlist.net_capacity())
        .map(|i| weights[i] * placement.net_hpwl(netlist, NetId::from_index(i)))
        .collect();
    let initial: f64 = net_cost.iter().sum();
    stats.cost_initial = initial;
    stats.cost_final = initial;
    if initial <= 0.0 {
        return (0.0, stats);
    }
    // --- Engine construction ---------------------------------------
    let cell_cap = netlist.cell_capacity();
    let mut movable_home = vec![u32::MAX; cell_cap];
    for (ix, cells) in cells_of.iter().enumerate() {
        for &c in cells {
            movable_home[c.index()] = ix as u32;
        }
    }
    let net_cap = netlist.net_capacity();
    let mut net_tid = vec![u32::MAX; net_cap];
    let mut tid_net: Vec<u32> = Vec::new();
    let mut pin_off: Vec<u32> = vec![0];
    let mut pin_cell: Vec<u32> = Vec::new();
    let mut pin_mult: Vec<u32> = Vec::new();
    let mut pos_x = vec![0.0f64; cell_cap];
    let mut pos_y = vec![0.0f64; cell_cap];
    let mut occurrences: Vec<u32> = Vec::new();
    for net in netlist.nets() {
        let Some(driver) = netlist.driver(net) else {
            continue;
        };
        if matches!(
            netlist.cell(driver).map(|c| c.kind()),
            Some(CellKind::Constant(_))
        ) {
            continue;
        }
        occurrences.clear();
        if placement.position(driver).is_some() {
            occurrences.push(driver.index() as u32);
        }
        for &(sink, _) in netlist.sinks(net) {
            if placement.position(sink).is_some() {
                occurrences.push(sink.index() as u32);
            }
        }
        if occurrences.len() < 2 {
            continue;
        }
        if !occurrences
            .iter()
            .any(|&c| movable_home[c as usize] != u32::MAX)
        {
            continue; // static net: its cached cost never changes
        }
        net_tid[net.index()] = tid_net.len() as u32;
        tid_net.push(net.index() as u32);
        occurrences.sort_unstable();
        let mut i = 0;
        while i < occurrences.len() {
            let c = occurrences[i];
            let mut m = 1u32;
            while i + (m as usize) < occurrences.len() && occurrences[i + m as usize] == c {
                m += 1;
            }
            let (x, y) = placement
                .position(CellId::from_index(c as usize))
                .expect("checked placed");
            pos_x[c as usize] = x;
            pos_y[c as usize] = y;
            pin_cell.push(c);
            pin_mult.push(m);
            i += m as usize;
        }
        pin_off.push(pin_cell.len() as u32);
    }
    let n_tracked = tid_net.len();
    // Cell → tracked-net references and per-PLB net lists.
    let mut pairs: Vec<(u32, u32, u32)> = Vec::new(); // (cell, tid, mult)
    let mut plb_nets: Vec<Vec<u32>> = vec![Vec::new(); n_plbs];
    for tid in 0..n_tracked {
        for i in pin_off[tid] as usize..pin_off[tid + 1] as usize {
            let c = pin_cell[i];
            let home = movable_home[c as usize];
            if home != u32::MAX {
                pairs.push((c, tid as u32, pin_mult[i]));
                plb_nets[home as usize].push(tid_net[tid]);
            }
        }
    }
    for list in &mut plb_nets {
        list.sort_unstable();
        list.dedup();
    }
    pairs.sort_unstable();
    let mut ref_off = vec![0u32; cell_cap + 1];
    for &(c, _, _) in &pairs {
        ref_off[c as usize + 1] += 1;
    }
    for i in 0..cell_cap {
        ref_off[i + 1] += ref_off[i];
    }
    let ref_tid: Vec<u32> = pairs.iter().map(|&(_, t, _)| t).collect();
    let ref_mult: Vec<u32> = pairs.iter().map(|&(_, _, m)| m).collect();
    let mut eng = Engine {
        weights,
        net_cost,
        pos_x,
        pos_y,
        net_tid,
        tid_net,
        pin_off,
        pin_cell,
        pin_mult,
        ref_off,
        ref_tid,
        ref_mult,
        boxes: Vec::new(),
        stamp: vec![0u32; n_tracked],
        journal: Vec::new(),
    };
    eng.boxes = vec![
        NetBox {
            min_x: 0.0,
            max_x: 0.0,
            min_y: 0.0,
            max_y: 0.0,
            n_min_x: 0,
            n_max_x: 0,
            n_min_y: 0,
            n_max_y: 0,
            dirty: false,
        };
        n_tracked
    ];
    for tid in 0..n_tracked {
        eng.rescan(tid);
        let b = &eng.boxes[tid];
        let net = eng.tid_net[tid] as usize;
        debug_assert!(
            eng.weights[net] * ((b.max_x - b.min_x) + (b.max_y - b.min_y)) == eng.net_cost[net],
            "cached box disagrees with the placement at build time"
        );
    }
    // --- Anneal -----------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut t = initial / n_plbs as f64; // gentle start
    let moves = config.moves_per_plb * n_plbs;
    let mut current = initial;
    let mut best_cost = initial;
    let mut best_state = cells_of.clone();
    let mut cur_stamp = 0u32;
    let mut affected: Vec<u32> = Vec::new();
    for round in 0..72 {
        let greedy = round >= 60; // zero-temperature tail
        let mut accepted = 0usize;
        for _ in 0..moves {
            let p = rng.gen_range(0..n_plbs);
            let q = rng.gen_range(0..n_plbs);
            if p == q {
                continue;
            }
            stats.moves_attempted += 1;
            cur_stamp += 1;
            eng.journal.clear();
            merge_into(&plb_nets[p], &plb_nets[q], &mut affected);
            let before: f64 = affected.iter().map(|&id| eng.net_cost[id as usize]).sum();
            let (qx, qy) = array.plb_center(q);
            let (px, py) = array.plb_center(p);
            for &c in &cells_of[p] {
                eng.move_cell(c.index(), qx, qy, cur_stamp);
            }
            for &c in &cells_of[q] {
                eng.move_cell(c.index(), px, py, cur_stamp);
            }
            let mut after = 0.0f64;
            for &id in &affected {
                let tid = eng.net_tid[id as usize] as usize;
                if eng.boxes[tid].dirty {
                    eng.rescan(tid);
                    stats.bbox_rescans += 1;
                } else {
                    stats.delta_evals += 1;
                }
                let b = &eng.boxes[tid];
                let cost = eng.weights[id as usize] * ((b.max_x - b.min_x) + (b.max_y - b.min_y));
                eng.net_cost[id as usize] = cost;
                after += cost;
            }
            let delta = after - before;
            let accept = if greedy {
                delta < 0.0
            } else {
                delta <= 0.0 || rng.gen::<f64>() < (-delta / t.max(1e-9)).exp()
            };
            if accept {
                cells_of.swap(p, q);
                plb_nets.swap(p, q);
                current += delta;
                accepted += 1;
                if current < best_cost {
                    best_cost = current;
                    best_state = cells_of.clone();
                }
            } else {
                eng.rollback();
                for &c in &cells_of[p] {
                    eng.pos_x[c.index()] = px;
                    eng.pos_y[c.index()] = py;
                }
                for &c in &cells_of[q] {
                    eng.pos_x[c.index()] = qx;
                    eng.pos_y[c.index()] = qy;
                }
            }
        }
        stats.moves_accepted += accepted as u64;
        stats.rounds += 1;
        t *= 0.85;
        if greedy && accepted == 0 {
            break;
        }
    }
    // Restore the best configuration seen, then write the result back
    // into the array and the placement in one pass.
    if current > best_cost {
        cells_of = best_state;
    }
    for (ix, cells) in cells_of.iter().enumerate() {
        seat_cells(array, placement, cells, ix);
    }
    let final_cost: f64 = best_cost.min(current);
    let real: f64 = (0..netlist.net_capacity())
        .map(|i| eng.weights[i] * placement.net_hpwl(netlist, NetId::from_index(i)))
        .sum();
    debug_assert!(
        (final_cost - real).abs() < 1e-6 * real.max(1.0) + 1e-6,
        "incremental cost drift: tracked {final_cost} vs real {real}"
    );
    stats.cost_final = final_cost;
    (1.0 - final_cost / initial, stats)
}

/// The direct formulation: every attempt moves the cells in the placement
/// and recomputes each affected net's HPWL from it. Kept as the oracle the
/// delta engine is tested against.
fn swap_legacy(
    array: &mut PlbArray,
    netlist: &Netlist,
    placement: &mut Placement,
    config: &SwapConfig,
) -> (f64, SwapStats) {
    let mut stats = SwapStats::default();
    let n_plbs = array.len();
    if n_plbs < 2 {
        return (0.0, stats);
    }
    // Cells per PLB.
    let mut cells_of: Vec<Vec<CellId>> = vec![Vec::new(); n_plbs];
    for (id, cell) in netlist.cells() {
        if cell.lib_id().is_none() {
            continue;
        }
        if let Some(ix) = array.plb_of(id) {
            cells_of[ix].push(id);
        }
    }
    // Net weights and incidence.
    let mut weights = vec![1.0f64; netlist.net_capacity()];
    if let Some(w) = &config.net_weights {
        for (i, &v) in w.iter().enumerate().take(weights.len()) {
            weights[i] = v;
        }
    }
    let mut cell_nets: Vec<Vec<NetId>> = vec![Vec::new(); netlist.cell_capacity()];
    for net in netlist.nets() {
        if let Some(d) = netlist.driver(net) {
            cell_nets[d.index()].push(net);
        }
        for &(sink, _) in netlist.sinks(net) {
            cell_nets[sink.index()].push(net);
        }
    }
    for nets in cell_nets.iter_mut() {
        nets.sort_unstable();
        nets.dedup();
    }
    let cost_of = |placement: &Placement, net: NetId| -> f64 {
        weights[net.index()] * placement.net_hpwl(netlist, net)
    };
    let mut net_cost: Vec<f64> = (0..netlist.net_capacity())
        .map(|i| cost_of(placement, NetId::from_index(i)))
        .collect();
    let initial: f64 = net_cost.iter().sum();
    stats.cost_initial = initial;
    stats.cost_final = initial;
    if initial <= 0.0 {
        return (0.0, stats);
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut t = initial / n_plbs as f64; // gentle start
    let moves = config.moves_per_plb * n_plbs;
    let mut current = initial;
    let mut best_cost = initial;
    let mut best_state = cells_of.clone();
    for round in 0..72 {
        let greedy = round >= 60; // zero-temperature tail
        let mut accepted = 0usize;
        for _ in 0..moves {
            let p = rng.gen_range(0..n_plbs);
            let q = rng.gen_range(0..n_plbs);
            if p == q {
                continue;
            }
            stats.moves_attempted += 1;
            // Affected nets.
            let mut nets: Vec<NetId> = Vec::new();
            for &cell in cells_of[p].iter().chain(&cells_of[q]) {
                nets.extend(cell_nets[cell.index()].iter().copied());
            }
            nets.sort_unstable();
            nets.dedup();
            let before: f64 = nets.iter().map(|n| net_cost[n.index()]).sum();
            seat_cells(array, placement, &cells_of[p], q);
            seat_cells(array, placement, &cells_of[q], p);
            let after: f64 = nets.iter().map(|&n| cost_of(placement, n)).sum();
            let delta = after - before;
            let accept = if greedy {
                delta < 0.0
            } else {
                delta <= 0.0 || rng.gen::<f64>() < (-delta / t.max(1e-9)).exp()
            };
            if accept {
                for &n in &nets {
                    net_cost[n.index()] = cost_of(placement, n);
                }
                cells_of.swap(p, q);
                current += delta;
                accepted += 1;
                if current < best_cost {
                    best_cost = current;
                    best_state = cells_of.clone();
                }
            } else {
                // Revert: each cell list returns to its home PLB.
                seat_cells(array, placement, &cells_of[p], p);
                seat_cells(array, placement, &cells_of[q], q);
            }
        }
        stats.moves_accepted += accepted as u64;
        stats.rounds += 1;
        t *= 0.85;
        if greedy && accepted == 0 {
            break;
        }
    }
    // Restore the best configuration seen.
    if current > best_cost {
        for (ix, cells) in best_state.iter().enumerate() {
            seat_cells(array, placement, cells, ix);
        }
    }
    let final_cost: f64 = best_cost.min(current);
    let real: f64 = (0..netlist.net_capacity())
        .map(|i| cost_of(placement, NetId::from_index(i)))
        .sum();
    debug_assert!(
        (final_cost - real).abs() < 1e-6 * real.max(1.0) + 1e-6,
        "incremental cost drift: tracked {final_cost} vs real {real}"
    );
    stats.cost_final = final_cost;
    (1.0 - final_cost / initial, stats)
}

/// Seats a list of cells in PLB `ix` (position + assignment). Occupancy
/// stays consistent because whole-PLB contents move wholesale and every PLB
/// has identical capacity; the PlbInstance occupancy tables are only
/// consulted during packing.
fn seat_cells(array: &mut PlbArray, placement: &mut Placement, cells: &[CellId], ix: usize) {
    let (x, y) = array.plb_center(ix);
    for &cell in cells {
        placement.set_position(cell, x, y);
        array.assign(cell, ix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrisect::{apply_to_placement, pack, PackConfig};
    use vpga_core::PlbArchitecture;
    use vpga_netlist::library::generic;
    use vpga_place::PlaceConfig;

    #[test]
    fn swapping_reduces_wirelength_after_packing() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let design = vpga_designs::NamedDesign::Alu.generate(&vpga_designs::DesignParams::tiny());
        let mapped = vpga_synth::map_netlist_fast(&design, &src, &arch).unwrap();
        let mut placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let mut array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &mapped, &mut placement);
        let before = placement.total_hpwl(&mapped);
        let gain = swap_optimize(&mut array, &mapped, &mut placement, &SwapConfig::default());
        let after = placement.total_hpwl(&mapped);
        assert!(
            after <= before + 1e-6,
            "swap must not worsen: {before} → {after}"
        );
        assert!(gain >= 0.0);
        // Assignments stay consistent with positions.
        for (id, cell) in mapped.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            let ix = array.plb_of(id).expect("assigned");
            assert_eq!(placement.position(id), Some(array.plb_center(ix)));
        }
    }

    #[test]
    fn single_plb_arrays_are_a_noop() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let mut n = vpga_netlist::Netlist::new("one");
        let a = n.add_input("a");
        let g = n.add_lib_cell("g", &src, "INV", &[a]).unwrap();
        n.add_output("y", g);
        let mapped = vpga_synth::map_netlist_fast(&n, &src, &arch).unwrap();
        let mut placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let mut array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &mapped, &mut placement);
        let gain = swap_optimize(&mut array, &mapped, &mut placement, &SwapConfig::default());
        assert_eq!(gain, 0.0);
    }

    #[test]
    fn delta_engine_matches_legacy_oracle() {
        // Same netlist, same seed: the delta engine must land on the exact
        // same assignments, positions, and core stats as the direct
        // recompute formulation.
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let design =
            vpga_designs::NamedDesign::Firewire.generate(&vpga_designs::DesignParams::tiny());
        let mapped = vpga_synth::map_netlist_fast(&design, &src, &arch).unwrap();
        let mut placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let mut array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &mapped, &mut placement);
        let mut array_l = array.clone();
        let mut placement_l = placement.clone();
        let (gain_d, stats_d) =
            swap_optimize_with_stats(&mut array, &mapped, &mut placement, &SwapConfig::default());
        let (gain_l, stats_l) = swap_optimize_with_stats(
            &mut array_l,
            &mapped,
            &mut placement_l,
            &SwapConfig {
                delta_cost: false,
                ..SwapConfig::default()
            },
        );
        assert_eq!(gain_d.to_bits(), gain_l.to_bits());
        assert_eq!(
            SwapStats {
                delta_evals: 0,
                bbox_rescans: 0,
                ..stats_d
            },
            stats_l
        );
        assert!(stats_d.delta_evals > 0, "delta path never exercised");
        for (id, cell) in mapped.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            assert_eq!(array.plb_of(id), array_l.plb_of(id));
            assert_eq!(
                placement
                    .position(id)
                    .map(|(x, y)| (x.to_bits(), y.to_bits())),
                placement_l
                    .position(id)
                    .map(|(x, y)| (x.to_bits(), y.to_bits()))
            );
        }
    }
}
