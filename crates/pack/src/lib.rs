//! Packing/legalization into a regular PLB array by recursive quadrisection
//! (§3.1 of the paper).
//!
//! "Our packing algorithm does this by recursive quadrisection. At each
//! quadrisection level, the component cells are relocated to other regions
//! of the chip depending on the availability of the corresponding resource
//! ... The cost function used in this algorithm takes into consideration
//! the criticality of the cells being moved and also tries to minimize
//! perturbation of the ASIC-style placement."
//!
//! * [`PlbArray`] — the legalized result: a cols×rows grid of
//!   [`vpga_core::PlbInstance`]s with every component cell (or compaction
//!   group) assigned to one PLB; its die area is the flow-b area of
//!   Table 1.
//! * [`pack`] — one quadrisection pass from an ASIC-style placement.
//! * [`pack_iterative`] — the §3.1 loop: pack, pin the well-placed cells,
//!   re-run physical synthesis ([`vpga_place::refine`]) for the rest, and
//!   repack, so that "the performance degradation due to legalizing the
//!   ASIC-style placement is minimal".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod arena;
mod array;
pub(crate) mod quadrisect;
mod swap;

pub use array::{PackError, PlbArray};
pub use quadrisect::{
    apply_to_placement, pack, pack_iterative, pack_iterative_with_stats, pack_with_stats,
    PackConfig, PackStats,
};
pub use swap::{swap_optimize, swap_optimize_with_stats, SwapConfig, SwapStats};
