//! Flat item/cell storage for the quadrisection packer.
//!
//! The packer's movable unit is an *item*: a single component cell or a
//! whole compaction group. The original implementation carried items as
//! `Vec<Item>`-of-`Vec<(CellId, CellClass, Option<Tt3>)>` and cloned the
//! buckets at every recursion level; this module replaces that with one
//! structure-of-arrays arena built once per [`crate::pack_iterative`]
//! call:
//!
//! * cells live in a flat arena addressed by CSR item rows (`off`),
//! * per-item slot demand is a dense `[u16; NCLASS]` counter in
//!   [`CellClass::PLB_CLASSES`] order,
//! * the §3.2 flexible-retarget decision (`matcher::match_cell` per
//!   candidate slot class) is precomputed once per distinct
//!   `(class, function)` pair into a 7-bit *seat mask* per cell, so the
//!   seat hot path is a masked occupancy probe instead of a truth-table
//!   match.
//!
//! Item order is the original order — singleton cells in netlist scan
//!   order, then groups in ascending [`GroupId`] — so an item index is
//! also its deterministic tie-break rank.

use vpga_core::{PlbArchitecture, SlotSet};
use vpga_logic::Tt3;
use vpga_netlist::{CellClass, CellId, CellKind, Netlist};
use vpga_place::Placement;

use crate::array::PackError;

/// Number of PLB slot classes (`CellClass::PLB_CLASSES.len()`).
pub(crate) const NCLASS: usize = 7;

/// Sentinel for "not seated in any PLB".
pub(crate) const NO_PLB: u32 = u32::MAX;

/// Index of a class within [`CellClass::PLB_CLASSES`].
///
/// # Panics
///
/// Panics if the class is not a PLB class (same contract as the packer's
/// original `class_bit`).
pub(crate) fn class_idx(class: CellClass) -> u8 {
    CellClass::PLB_CLASSES
        .iter()
        .position(|&c| c == class)
        .expect("PLB class") as u8
}

/// Slot classes that can host a cell of `class` computing `function` —
/// the array-sizing view of the §3.2 flexibility rule (capacity-filtered,
/// exactly as the subset-counting bound wants it).
pub(crate) fn compatible_classes(
    arch: &PlbArchitecture,
    class: CellClass,
    function: Option<Tt3>,
) -> Vec<CellClass> {
    let mut out = vec![class];
    let Some(f) = function else { return out };
    for alt in CellClass::PLB_CLASSES {
        if alt == class || alt.is_sequential() || arch.capacity().count(alt) == 0 {
            continue;
        }
        let Some(cell) = arch.slot_cell(alt) else {
            continue;
        };
        if vpga_core::matcher::match_cell(cell, f, 3).is_some() {
            out.push(alt);
        }
    }
    out
}

/// The seat-time view of the same rule: the set of classes
/// [`vpga_core::PlbInstance::place_flexible`] would try for this cell, as
/// a bit mask over [`CellClass::PLB_CLASSES`] (native class included).
/// Unlike the sizing mask it is not capacity-filtered — a zero-capacity
/// class simply never has a free slot — and it honours `place_flexible`'s
/// extra sequential-slot-cell exclusion.
fn seat_mask_of(arch: &PlbArchitecture, class: CellClass, function: Option<Tt3>) -> u8 {
    let native = 1u8 << class_idx(class);
    if class.is_sequential() {
        return native;
    }
    let Some(f) = function else { return native };
    let mut mask = native;
    for (i, &alt) in CellClass::PLB_CLASSES.iter().enumerate() {
        if alt == class || alt.is_sequential() {
            continue;
        }
        let Some(cell) = arch.slot_cell(alt) else {
            continue;
        };
        if cell.is_sequential() {
            continue;
        }
        if vpga_core::matcher::match_cell(cell, f, 3).is_some() {
            mask |= 1 << i;
        }
    }
    mask
}

/// Per-`(class, function)` mask cache. Function index 0..=255 is the
/// truth table's bit pattern; 256 is "no function". Dense, so the build
/// loop never hashes.
struct MaskTables {
    computed: Vec<[bool; 257]>,
    sizing: Vec<[u8; 257]>,
    seat: Vec<[u8; 257]>,
}

impl MaskTables {
    fn new() -> MaskTables {
        MaskTables {
            computed: vec![[false; 257]; NCLASS],
            sizing: vec![[0; 257]; NCLASS],
            seat: vec![[0; 257]; NCLASS],
        }
    }

    /// `(sizing mask, seat mask)` for a cell, honouring the config's
    /// flexibility switch (rigid packing and sequential cells never
    /// retarget).
    fn masks(
        &mut self,
        arch: &PlbArchitecture,
        flexible: bool,
        class: CellClass,
        function: Option<Tt3>,
    ) -> (u8, u8) {
        let k = class_idx(class) as usize;
        if class.is_sequential() || !flexible {
            let native = 1u8 << k;
            return (native, native);
        }
        let f = function.map_or(256, |t| t.bits() as usize);
        if !self.computed[k][f] {
            self.sizing[k][f] = compatible_classes(arch, class, function)
                .into_iter()
                .fold(0u8, |m, c| m | (1 << class_idx(c)));
            self.seat[k][f] = seat_mask_of(arch, class, function);
            self.computed[k][f] = true;
        }
        (self.sizing[k][f], self.seat[k][f])
    }
}

/// The flat item arena: one CSR row of cells per item, dense per-item
/// demand counters, and refreshable raw (die-coordinate) positions.
pub(crate) struct ItemArena {
    /// Number of items.
    pub items: usize,
    /// CSR row offsets into the cell arrays (`items + 1` entries).
    pub off: Vec<u32>,
    /// Cell ids, grouped by item.
    pub cell_id: Vec<CellId>,
    /// Native class of each cell, as a [`CellClass::PLB_CLASSES`] index.
    pub cell_class: Vec<u8>,
    /// Seat-time compatible-class mask of each cell (native bit set).
    pub seat_mask: Vec<u8>,
    /// Array-sizing compatible-class mask of each cell.
    pub sizing_mask: Vec<u8>,
    /// Per-item slot demand in [`CellClass::PLB_CLASSES`] order.
    pub demand: Vec<[u16; NCLASS]>,
    /// Per-item position in raw die coordinates (group centroid), updated
    /// by [`ItemArena::refresh_positions`] between §3.1 repack passes.
    pub gx: Vec<f64>,
    /// See [`ItemArena::gx`].
    pub gy: Vec<f64>,
    /// Per-item timing criticality (max over member cells).
    pub crit: Vec<f64>,
    /// Architecture capacity per class, in [`CellClass::PLB_CLASSES`]
    /// order.
    pub cap: [u16; NCLASS],
}

impl ItemArena {
    /// Collects the netlist's library cells into items: singleton cells
    /// in scan order, then compaction groups in ascending [`GroupId`].
    /// Positions are left at zero; call [`ItemArena::refresh_positions`]
    /// before packing.
    ///
    /// # Errors
    ///
    /// [`PackError::ForeignCell`] for cells outside the architecture's
    /// library, [`PackError::GroupTooLarge`] for groups exceeding one PLB
    /// (checked in `GroupId` order, as the original item collection did).
    pub fn build(
        netlist: &Netlist,
        arch: &PlbArchitecture,
        flexible: bool,
        criticality: Option<&[f64]>,
    ) -> Result<ItemArena, PackError> {
        let lib = arch.library();
        let mut tables = MaskTables::new();
        let crit_of = |cell: CellId| -> f64 {
            criticality
                .and_then(|v| v.get(cell.index()).copied())
                .unwrap_or(0.0)
        };
        let mut arena = ItemArena {
            items: 0,
            off: vec![0],
            cell_id: Vec::new(),
            cell_class: Vec::new(),
            seat_mask: Vec::new(),
            sizing_mask: Vec::new(),
            demand: Vec::new(),
            gx: Vec::new(),
            gy: Vec::new(),
            crit: Vec::new(),
            cap: {
                let mut cap = [0u16; NCLASS];
                for (i, &c) in CellClass::PLB_CLASSES.iter().enumerate() {
                    cap[i] = arch.capacity().count(c);
                }
                cap
            },
        };
        // (cell, class index, seat mask, sizing mask, criticality) per
        // group, keyed densely by group index, members in scan order.
        type Member = (CellId, u8, u8, u8, f64);
        let mut groups: Vec<Vec<Member>> = Vec::new();
        for (id, cell) in netlist.cells() {
            let CellKind::Lib(lib_id) = cell.kind() else {
                continue;
            };
            let lc = lib.cell(lib_id).ok_or_else(|| PackError::ForeignCell {
                cell: netlist.cell_name(id).to_owned(),
            })?;
            let class = lc.class();
            let function = netlist.instance_function(id, lib);
            let (sizing, seat) = tables.masks(arch, flexible, class, function);
            let k = class_idx(class);
            match cell.group() {
                Some(g) => {
                    let gi = g.index();
                    if gi >= groups.len() {
                        groups.resize_with(gi + 1, Vec::new);
                    }
                    groups[gi].push((id, k, seat, sizing, crit_of(id)));
                }
                None => {
                    arena.cell_id.push(id);
                    arena.cell_class.push(k);
                    arena.seat_mask.push(seat);
                    arena.sizing_mask.push(sizing);
                    arena.off.push(arena.cell_id.len() as u32);
                    let mut d = [0u16; NCLASS];
                    d[k as usize] = 1;
                    arena.demand.push(d);
                    arena.crit.push(crit_of(id));
                }
            }
        }
        for members in groups.into_iter().filter(|m| !m.is_empty()) {
            let mut d = [0u16; NCLASS];
            let mut crit = 0.0f64;
            for &(id, k, seat, sizing, c) in &members {
                arena.cell_id.push(id);
                arena.cell_class.push(k);
                arena.seat_mask.push(seat);
                arena.sizing_mask.push(sizing);
                d[k as usize] += 1;
                crit = crit.max(c);
            }
            arena.off.push(arena.cell_id.len() as u32);
            if !(0..NCLASS).all(|k| d[k] <= arena.cap[k]) {
                let mut demand = SlotSet::new();
                for (k, &n) in d.iter().enumerate() {
                    demand.add(CellClass::PLB_CLASSES[k], n);
                }
                return Err(PackError::GroupTooLarge { demand });
            }
            arena.demand.push(d);
            arena.crit.push(crit);
        }
        arena.items = arena.demand.len();
        arena.gx = vec![0.0; arena.items];
        arena.gy = vec![0.0; arena.items];
        Ok(arena)
    }

    /// Number of cells in the arena.
    pub fn n_cells(&self) -> usize {
        self.cell_id.len()
    }

    /// The cell range of an item.
    pub fn cells_of(&self, item: u32) -> std::ops::Range<usize> {
        self.off[item as usize] as usize..self.off[item as usize + 1] as usize
    }

    /// Re-reads item positions from the placement: group centroids are
    /// the mean over member positions, summed in member order (the same
    /// accumulation order as the original scan, for bit-identical
    /// centroids).
    pub fn refresh_positions(&mut self, placement: &Placement) {
        for i in 0..self.items {
            let lo = self.off[i] as usize;
            let hi = self.off[i + 1] as usize;
            let (mut sx, mut sy) = (0.0f64, 0.0f64);
            for &id in &self.cell_id[lo..hi] {
                let (x, y) = placement.position(id).unwrap_or((0.0, 0.0));
                sx += x;
                sy += y;
            }
            let n = (hi - lo) as f64;
            self.gx[i] = sx / n;
            self.gy[i] = sy / n;
        }
    }

    /// Reconstructs an item's demand as a [`SlotSet`] (diagnostics only).
    pub fn demand_set(&self, item: u32) -> SlotSet {
        let mut d = SlotSet::new();
        for (k, &n) in self.demand[item as usize].iter().enumerate() {
            d.add(CellClass::PLB_CLASSES[k], n);
        }
        d
    }
}

/// One seated leaf region's outcome, memoized across §3.1 repack passes.
///
/// A leaf's seating depends only on its ordered item list (every leaf
/// starts from an empty PLB, and items are static within one
/// `pack_iterative` call), so a record whose `items` key matches the
/// current list verbatim can be replayed without re-running the seat
/// loop — the pack analogue of PR 2's dirty-net rip-up.
pub(crate) struct LeafRecord {
    /// The ordered item list this outcome was computed for (the lookup
    /// key).
    pub items: Vec<u32>,
    /// Items seated, in seat order.
    pub seated: Vec<u32>,
    /// Slot-class index per cell of each seated item, concatenated in
    /// seat order.
    pub slots: Vec<u8>,
    /// Items spilled, in spill order.
    pub spilled: Vec<u32>,
    /// Final occupancy of the leaf PLB.
    pub occ: [u16; NCLASS],
}

struct MemoGrid {
    cols: usize,
    rows: usize,
    leaves: Vec<Option<LeafRecord>>,
}

/// Cross-pass leaf memo, keyed by array size then leaf index. Content
/// validation is exact (verbatim ordered-list equality), so replay is
/// bit-identical by construction whatever mixture of passes and growth
/// retries produced the records.
pub(crate) struct RepackMemo {
    /// Master switch ([`crate::PackConfig::incremental`]).
    pub enabled: bool,
    /// True once a full pack pass has completed; the reuse counters only
    /// tick on later passes, when there is a previous pass to diff
    /// against.
    pub populated: bool,
    grids: Vec<MemoGrid>,
}

impl RepackMemo {
    pub fn new(enabled: bool) -> RepackMemo {
        RepackMemo {
            enabled,
            populated: false,
            grids: Vec::new(),
        }
    }

    /// The memoized record for a leaf, if its membership matches
    /// verbatim.
    pub fn lookup(
        &self,
        cols: usize,
        rows: usize,
        leaf: usize,
        items: &[u32],
    ) -> Option<&LeafRecord> {
        let grid = self
            .grids
            .iter()
            .find(|g| g.cols == cols && g.rows == rows)?;
        let rec = grid.leaves.get(leaf)?.as_ref()?;
        (rec.items == items).then_some(rec)
    }

    /// Stores (or overwrites) a leaf's outcome.
    pub fn record(&mut self, cols: usize, rows: usize, leaf: usize, rec: LeafRecord) {
        let grid = match self
            .grids
            .iter_mut()
            .position(|g| g.cols == cols && g.rows == rows)
        {
            Some(i) => &mut self.grids[i],
            None => {
                self.grids.push(MemoGrid {
                    cols,
                    rows,
                    leaves: Vec::new(),
                });
                self.grids.last_mut().expect("just pushed")
            }
        };
        if leaf >= grid.leaves.len() {
            grid.leaves.resize_with(leaf + 1, || None);
        }
        grid.leaves[leaf] = Some(rec);
    }
}
