//! The recursive-quadrisection packing algorithm and the pack↔place loop.
//!
//! The engine is incremental and cache-friendly while staying bit-identical
//! to the reference formulation:
//!
//! * Items live in a flat SoA arena ([`crate::arena::ItemArena`]) built
//!   once per call; the recursion works on index lists over it instead of
//!   cloning per-level buckets.
//! * Absent balance relocations, an item's whole quadrant path is
//!   determined by its floor grid cell (every split is at an integer
//!   midpoint and bucketing preserves input order), so the recursion
//!   walks *pristine* subtrees with per-class 2-D prefix sums over leaf
//!   demands — O(1) per node — and only materializes item lists where a
//!   quadrant actually overflows and the §3.1 balancing step must run.
//! * Across repack passes of [`pack_iterative`], leaf regions whose item
//!   membership is unchanged replay their previous seating verbatim
//!   ([`crate::arena::RepackMemo`]); dirty regions are re-partitioned.
//! * The spill pass pulls candidate PLBs from a lazy distance heap
//!   instead of fully sorting the array per spilled item, and every seat
//!   probe is a masked occupancy check (the `matcher::match_cell`
//!   flexibility decisions are precomputed per `(class, function)`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vpga_core::PlbArchitecture;
use vpga_netlist::{CellClass, CellId, CellKind, Netlist};
use vpga_place::{PlaceConfig, Placement};

use crate::arena::{ItemArena, LeafRecord, RepackMemo, NCLASS, NO_PLB};
use crate::array::{PackError, PlbArray};

/// Tunables for [`pack`] and [`pack_iterative`].
#[derive(Clone, Debug)]
pub struct PackConfig {
    /// Array-sizing headroom: the array is sized so the binding resource
    /// class is at most this full. Lower values give easier packing and a
    /// larger die.
    pub target_fill: f64,
    /// Enable the §3.2 flexibility rule: a cell may take a slot of another
    /// class when its via-programmed function allows it.
    pub flexible: bool,
    /// Iterations of the §3.1 pack ↔ physical-synthesis loop (1 = a single
    /// pack with no replacement).
    pub iterations: usize,
    /// Per-cell timing criticality in `[0, 1]`, indexed by
    /// [`CellId::index`]; weights the relocation cost.
    pub criticality: Option<Vec<f64>>,
    /// Retries with a grown array if packing fails.
    pub growth_retries: usize,
    /// Reuse seated assignments for leaf regions whose item membership is
    /// unchanged from the previous §3.1 repack pass. Results are
    /// bit-identical either way; the switch exists for the equivalence
    /// tests.
    pub incremental: bool,
}

impl Default for PackConfig {
    fn default() -> PackConfig {
        PackConfig {
            target_fill: 0.85,
            flexible: true,
            iterations: 2,
            criticality: None,
            growth_retries: 8,
            incremental: true,
        }
    }
}

/// Counters from one quadrisection packing run (accumulated over the
/// grow-and-retry attempts, and over repack passes in
/// [`pack_iterative_with_stats`]) — the per-stage instrumentation the flow
/// executor reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Movable units (cells plus whole compaction groups) packed.
    pub items: usize,
    /// Items relocated between quadrants by the resource-balancing step.
    pub relocations: u64,
    /// Items the recursion could not seat geometrically, handled by the
    /// nearest-fit spill pass.
    pub spilled: u64,
    /// Array-growth retries taken before the design fit.
    pub growth_retries: u32,
    /// Full quadrisection passes run (> 1 only for the §3.1 loop).
    pub passes: u32,
    /// Leaf regions on repack passes whose previous seating was replayed
    /// verbatim because their item membership was unchanged.
    pub regions_reused: u64,
    /// Leaf regions on repack passes re-seated because their item
    /// membership changed (or no previous record matched).
    pub subtrees_repartitioned: u64,
}

/// Packs the placed netlist into a PLB array of `arch`. The placement is
/// read-only; apply the result with [`apply_to_placement`].
///
/// # Errors
///
/// * [`PackError::InvalidTargetFill`] if `config.target_fill` is outside
///   `(0, 1]`,
/// * [`PackError::ForeignCell`] if the netlist was mapped against a
///   different library,
/// * [`PackError::GroupTooLarge`] if a compaction group exceeds one PLB,
/// * [`PackError::Unpackable`] if the design cannot be seated even after
///   growing the array `config.growth_retries` times.
pub fn pack(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &Placement,
    config: &PackConfig,
) -> Result<PlbArray, PackError> {
    pack_with_stats(netlist, arch, placement, config).map(|(array, _)| array)
}

/// [`pack`], also returning the packer's [`PackStats`].
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_with_stats(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &Placement,
    config: &PackConfig,
) -> Result<(PlbArray, PackStats), PackError> {
    if !(config.target_fill > 0.0 && config.target_fill <= 1.0) {
        return Err(PackError::InvalidTargetFill(config.target_fill));
    }
    let mut arena = ItemArena::build(
        netlist,
        arch,
        config.flexible,
        config.criticality.as_deref(),
    )?;
    arena.refresh_positions(placement);
    let mut stats = PackStats {
        items: arena.items,
        passes: 1,
        ..PackStats::default()
    };
    let mut memo = RepackMemo::new(config.incremental);
    let array = pack_once(&arena, arch, placement.die(), config, &mut memo, &mut stats)?;
    Ok((array, stats))
}

/// One full pack (sizing bound plus the grow-and-retry loop) over a
/// prepared arena. Accumulates counters into `stats`.
fn pack_once(
    arena: &ItemArena,
    arch: &PlbArchitecture,
    die: vpga_place::Rect,
    config: &PackConfig,
    memo: &mut RepackMemo,
    stats: &mut PackStats,
) -> Result<PlbArray, PackError> {
    // Total demand per class.
    let mut totals = [0u16; NCLASS];
    for d in &arena.demand {
        for (t, &v) in totals.iter_mut().zip(d) {
            *t += v;
        }
    }
    // Minimum PLB count. When flexible placement is on, each cell's
    // function may be hosted by several slot classes (the §3.2 flexibility
    // that gives the granular PLB its packing efficiency). The exact
    // counting bound is: for every subset S of slot classes, the cells
    // whose compatible-class sets lie entirely inside S must fit within
    // S's pooled capacity. With seven classes that is 128 subsets —
    // enumerated exactly.
    let mut n_plbs = arena
        .items
        .max(1)
        .div_ceil(arch.capacity().total() as usize);
    let mut demand_by_mask = [0usize; 128];
    for &m in &arena.sizing_mask {
        demand_by_mask[m as usize] += 1;
    }
    // Per-class hard infeasibility check (class with demand but no slots
    // anywhere and no alternative host).
    for (k, &class) in CellClass::PLB_CLASSES.iter().enumerate() {
        let total = totals[k] as usize;
        if total > 0 && arena.cap[k] == 0 {
            let stuck = demand_by_mask[1usize << k];
            if stuck > 0 {
                return Err(PackError::CapacityExceeded {
                    class,
                    demand: total,
                    available: 0,
                });
            }
        }
    }
    for subset in 1u16..128 {
        let subset = subset as u8;
        let cap: usize = (0..NCLASS)
            .filter(|&i| subset & (1 << i) != 0)
            .map(|i| arena.cap[i] as usize)
            .sum();
        let demand: usize = demand_by_mask
            .iter()
            .enumerate()
            .filter(|&(m, _)| m as u8 & !subset == 0)
            .map(|(_, &n)| n)
            .sum();
        if demand == 0 {
            continue;
        }
        if cap == 0 {
            // Some cell fits only classes this architecture lacks.
            let class = (0..NCLASS)
                .find(|&i| subset & (1 << i) != 0)
                .map(|i| CellClass::PLB_CLASSES[i])
                .expect("non-empty subset");
            return Err(PackError::CapacityExceeded {
                class,
                demand,
                available: 0,
            });
        }
        let need = (demand as f64 / (cap as f64 * config.target_fill)).ceil() as usize;
        n_plbs = n_plbs.max(need);
    }
    // Grow-and-retry loop.
    let mut attempt_plbs = n_plbs;
    for retry in 0..=config.growth_retries {
        let cols = (attempt_plbs as f64).sqrt().ceil() as usize;
        let rows = attempt_plbs.div_ceil(cols);
        let mut attempt = Attempt::new(arena, config, cols, rows, die);
        attempt.walk_pristine(
            Region {
                c0: 0,
                c1: cols,
                r0: 0,
                r1: rows,
            },
            memo,
        );
        stats.relocations += attempt.relocations;
        stats.regions_reused += attempt.reused;
        stats.subtrees_repartitioned += attempt.repartitioned;
        stats.spilled += attempt.spill.len() as u64;
        // Spill pass: hardest items first (groups, then the least flexible
        // single cells), each into the nearest PLB with room.
        let mut spill = std::mem::take(&mut attempt.spill);
        spill.sort_by(|&a, &b| {
            let (la, lb) = (arena.cells_of(a).len(), arena.cells_of(b).len());
            lb.cmp(&la).then_with(|| {
                arena.crit[a as usize]
                    .total_cmp(&arena.crit[b as usize])
                    .reverse()
            })
        });
        let mut leftover = 0usize;
        for it in spill {
            if !attempt.seat_nearest(it) {
                leftover += 1;
                if std::env::var_os("VPGA_PACK_DEBUG").is_some() {
                    eprintln!(
                        "unseated item: {} cells, demand {}",
                        arena.cells_of(it).len(),
                        arena.demand_set(it)
                    );
                }
            }
        }
        if leftover == 0 {
            stats.growth_retries += retry as u32;
            return Ok(attempt.into_array(arch));
        }
        if retry == config.growth_retries {
            return Err(PackError::Unpackable { leftover });
        }
        // Escalating growth: gentle first (stay near the sizing bound),
        // aggressive later (fragmentation by groups can need real slack).
        let factor = match retry {
            0..=2 => 1.06,
            3..=4 => 1.12,
            5..=6 => 1.25,
            _ => 1.5,
        };
        attempt_plbs = (attempt_plbs as f64 * factor).ceil() as usize + 1;
    }
    unreachable!("loop returns or errors")
}

/// Writes the packed locations back into the placement: every cell moves to
/// its PLB centre, the die becomes the array extent, and the I/O pads are
/// rescaled onto the new periphery.
pub fn apply_to_placement(array: &PlbArray, netlist: &Netlist, placement: &mut Placement) {
    let old = placement.die();
    let pitch = array.plb_pitch();
    let new = vpga_place::Rect {
        x0: 0.0,
        y0: 0.0,
        x1: array.cols() as f64 * pitch,
        y1: array.rows() as f64 * pitch,
    };
    placement.set_die(new);
    for &port in netlist.inputs().iter().chain(netlist.outputs()) {
        if let Some((x, y)) = placement.position(port) {
            let fx = (x - old.x0) / old.width().max(1e-9);
            let fy = (y - old.y0) / old.height().max(1e-9);
            placement.set_position(port, new.x0 + fx * new.width(), new.y0 + fy * new.height());
        }
    }
    for (id, cell) in netlist.cells() {
        if !matches!(cell.kind(), CellKind::Lib(_)) {
            continue;
        }
        if let Some(ix) = array.plb_of(id) {
            let (x, y) = array.plb_center(ix);
            placement.set_position(id, x, y);
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Region {
    c0: usize,
    c1: usize,
    r0: usize,
    r1: usize,
}

impl Region {
    fn plbs(&self) -> usize {
        (self.c1 - self.c0) * (self.r1 - self.r0)
    }

    fn center(&self) -> (f64, f64) {
        (
            (self.c0 + self.c1) as f64 / 2.0,
            (self.r0 + self.r1) as f64 / 2.0,
        )
    }
}

/// Splits a region into up to four quadrants (degenerate strips split in
/// the long direction), in the recursion's canonical order.
fn split(region: &Region) -> ([Region; 4], usize) {
    let cm = if region.c1 - region.c0 > 1 {
        (region.c0 + region.c1) / 2
    } else {
        region.c1
    };
    let rm = if region.r1 - region.r0 > 1 {
        (region.r0 + region.r1) / 2
    } else {
        region.r1
    };
    let mut quads = [*region; 4];
    let mut n = 0;
    for (c0, c1) in [(region.c0, cm), (cm, region.c1)] {
        if c0 >= c1 {
            continue;
        }
        for (r0, r1) in [(region.r0, rm), (rm, region.r1)] {
            if r0 >= r1 {
                continue;
            }
            quads[n] = Region { c0, c1, r0, r1 };
            n += 1;
        }
    }
    (quads, n)
}

/// `f64` keyed for a min-heap via `total_cmp` (never NaN here, but total
/// order keeps the heap honest regardless).
#[derive(Clone, Copy, PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Dist) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Dist) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One packing attempt over a fixed cols × rows array: normalized item
/// positions, the leaf CSR and demand prefix sums for the pristine walk,
/// per-PLB occupancy, and the resulting cell assignments.
struct Attempt<'a> {
    arena: &'a ItemArena,
    config: &'a PackConfig,
    cols: usize,
    rows: usize,
    /// Normalized grid coordinates (0..cols, 0..rows), mutated by balance
    /// relocations exactly as the reference algorithm does.
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// Items per leaf PLB (floor grid cell), CSR, ascending item index
    /// within each row.
    leaf_off: Vec<u32>,
    leaf_items: Vec<u32>,
    /// 2-D inclusive prefix sums over leaves, (cols+1) × (rows+1): item
    /// counts and per-class demand. Demand sums are u32 and masked to u16
    /// at query time, matching the reference's wrapping `SlotSet`
    /// arithmetic.
    pcount: Vec<u32>,
    pdem: Vec<[u32; NCLASS]>,
    /// Per-PLB occupancy.
    occ: Vec<[u16; NCLASS]>,
    /// Per-arena-cell assignment (PLB index / slot-class index).
    cell_plb: Vec<u32>,
    cell_slot: Vec<u8>,
    spill: Vec<u32>,
    relocations: u64,
    reused: u64,
    repartitioned: u64,
    /// Recycled backing store for the spill pass's distance heap.
    heap_scratch: Vec<Reverse<(Dist, usize)>>,
}

impl<'a> Attempt<'a> {
    fn new(
        arena: &'a ItemArena,
        config: &'a PackConfig,
        cols: usize,
        rows: usize,
        die: vpga_place::Rect,
    ) -> Attempt<'a> {
        let n = arena.items;
        let mut gx = Vec::with_capacity(n);
        let mut gy = Vec::with_capacity(n);
        for i in 0..n {
            gx.push(
                ((arena.gx[i] - die.x0) / die.width().max(1e-9) * cols as f64)
                    .clamp(0.0, cols as f64 - 1e-6),
            );
            gy.push(
                ((arena.gy[i] - die.y0) / die.height().max(1e-9) * rows as f64)
                    .clamp(0.0, rows as f64 - 1e-6),
            );
        }
        // Leaf CSR by counting sort (stable: ascending item index per
        // row — the order the reference recursion preserves).
        let leaves = cols * rows;
        let leaf_of = |i: usize| -> usize {
            let c = gx[i] as usize;
            let r = gy[i] as usize;
            r * cols + c
        };
        let mut leaf_off = vec![0u32; leaves + 1];
        for i in 0..n {
            leaf_off[leaf_of(i) + 1] += 1;
        }
        for l in 0..leaves {
            leaf_off[l + 1] += leaf_off[l];
        }
        let mut cursor: Vec<u32> = leaf_off[..leaves].to_vec();
        let mut leaf_items = vec![0u32; n];
        for i in 0..n {
            let l = leaf_of(i);
            leaf_items[cursor[l] as usize] = i as u32;
            cursor[l] += 1;
        }
        // Inclusive 2-D prefix sums over the leaf grid.
        let w = cols + 1;
        let mut pcount = vec![0u32; w * (rows + 1)];
        let mut pdem = vec![[0u32; NCLASS]; w * (rows + 1)];
        for i in 0..n {
            let c = gx[i] as usize;
            let r = gy[i] as usize;
            let at = (r + 1) * w + (c + 1);
            pcount[at] += 1;
            for (p, &v) in pdem[at].iter_mut().zip(&arena.demand[i]) {
                *p += u32::from(v);
            }
        }
        for r in 1..=rows {
            for c in 1..=cols {
                let at = r * w + c;
                pcount[at] = pcount[at] + pcount[at - w] + pcount[at - 1] - pcount[at - w - 1];
                let (up, left, diag) = (pdem[at - w], pdem[at - 1], pdem[at - w - 1]);
                for (k, d) in pdem[at].iter_mut().enumerate() {
                    *d = *d + up[k] + left[k] - diag[k];
                }
            }
        }
        Attempt {
            arena,
            config,
            cols,
            rows,
            gx,
            gy,
            leaf_off,
            leaf_items,
            pcount,
            pdem,
            occ: vec![[0u16; NCLASS]; leaves],
            cell_plb: vec![NO_PLB; arena.n_cells()],
            cell_slot: vec![0u8; arena.n_cells()],
            spill: Vec::new(),
            relocations: 0,
            reused: 0,
            repartitioned: 0,
            heap_scratch: Vec::new(),
        }
    }

    fn rect_count(&self, q: &Region) -> u32 {
        let w = self.cols + 1;
        let at = |r: usize, c: usize| self.pcount[r * w + c];
        at(q.r1, q.c1) + at(q.r0, q.c0) - at(q.r0, q.c1) - at(q.r1, q.c0)
    }

    /// Region demand of one class, wrapped to u16 to match the
    /// reference's `SlotSet` accumulation in release builds.
    fn rect_demand(&self, q: &Region, k: usize) -> u16 {
        let w = self.cols + 1;
        let at = |r: usize, c: usize| self.pdem[r * w + c][k];
        (at(q.r1, q.c1)
            .wrapping_add(at(q.r0, q.c0))
            .wrapping_sub(at(q.r0, q.c1))
            .wrapping_sub(at(q.r1, q.c0))) as u16
    }

    fn rect_overflows(&self, q: &Region) -> bool {
        let plbs = q.plbs();
        (0..NCLASS).any(|k| (self.rect_demand(q, k) as usize) > plbs * self.arena.cap[k] as usize)
    }

    /// Recursion over a subtree whose items are untouched by any balance
    /// relocation: membership is implied by the floor grid cell, demand
    /// checks are prefix-sum queries, and no item list is materialized
    /// until a quadrant overflows.
    fn walk_pristine(&mut self, region: Region, memo: &mut RepackMemo) {
        if self.rect_count(&region) == 0 {
            return;
        }
        if region.plbs() == 1 {
            let leaf = region.r0 * self.cols + region.c0;
            let row = self.leaf_off[leaf] as usize..self.leaf_off[leaf + 1] as usize;
            let list = self.leaf_items[row].to_vec();
            self.seat_leaf(leaf, list, memo);
            return;
        }
        let (quads, nq) = split(&region);
        let quads = &quads[..nq];
        if !quads.iter().any(|q| self.rect_overflows(q)) {
            for q in quads {
                self.walk_pristine(*q, memo);
            }
            return;
        }
        // A quadrant overflows: materialize the buckets (ascending item
        // index — exactly the order the reference bucketing preserves)
        // and run the §3.1 balancing step.
        let mut buckets: Vec<Vec<u32>> = quads
            .iter()
            .map(|q| {
                let mut b = Vec::with_capacity(self.rect_count(q) as usize);
                for r in q.r0..q.r1 {
                    let lo = self.leaf_off[r * self.cols + q.c0] as usize;
                    let hi = self.leaf_off[r * self.cols + q.c1] as usize;
                    b.extend_from_slice(&self.leaf_items[lo..hi]);
                }
                b.sort_unstable();
                b
            })
            .collect();
        self.relocations += self.balance(quads, &mut buckets);
        for (q, bucket) in quads.iter().zip(buckets) {
            self.walk_materialized(*q, bucket, memo);
        }
    }

    /// Recursion over an explicit item list (a balance relocation touched
    /// an ancestor, so floor-cell membership no longer applies) — the
    /// reference algorithm verbatim, over arena indices.
    fn walk_materialized(&mut self, region: Region, items: Vec<u32>, memo: &mut RepackMemo) {
        if items.is_empty() {
            return;
        }
        if region.plbs() == 1 {
            let leaf = region.r0 * self.cols + region.c0;
            self.seat_leaf(leaf, items, memo);
            return;
        }
        let (quads, nq) = split(&region);
        let quads = &quads[..nq];
        // Geometric assignment.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nq];
        for it in items {
            let (x, y) = (self.gx[it as usize], self.gy[it as usize]);
            let q = quads
                .iter()
                .position(|q| {
                    x >= q.c0 as f64 && x < q.c1 as f64 && y >= q.r0 as f64 && y < q.r1 as f64
                })
                .unwrap_or(0);
            buckets[q].push(it);
        }
        self.relocations += self.balance(quads, &mut buckets);
        for (q, bucket) in quads.iter().zip(buckets) {
            self.walk_materialized(*q, bucket, memo);
        }
    }

    fn demand_of(&self, bucket: &[u32]) -> [u16; NCLASS] {
        let mut d = [0u16; NCLASS];
        for &it in bucket {
            for (a, &b) in d.iter_mut().zip(&self.arena.demand[it as usize]) {
                *a += b;
            }
        }
        d
    }

    /// First overflowing class of a region, in `PLB_CLASSES` order.
    fn overflows(&self, region: &Region, demand: &[u16; NCLASS]) -> Option<usize> {
        (0..NCLASS).find(|&k| (demand[k] as usize) > region.plbs() * self.arena.cap[k] as usize)
    }

    /// Resource balancing: relocate overflow items to quadrants with room,
    /// cheapest (criticality-weighted displacement) first.
    fn balance(&mut self, quads: &[Region], buckets: &mut [Vec<u32>]) -> u64 {
        let mut relocated = 0u64;
        let mut demands: Vec<[u16; NCLASS]> = buckets.iter().map(|b| self.demand_of(b)).collect();
        // Bounded relocation loop.
        for _ in 0..10_000 {
            let Some((qi, class)) = quads
                .iter()
                .enumerate()
                .find_map(|(i, q)| self.overflows(q, &demands[i]).map(|c| (i, c)))
            else {
                return relocated; // feasible everywhere
            };
            // Candidate items in the overfull quadrant that use the class.
            let mut best: Option<(usize, usize, f64)> = None; // (item ix, target quad, cost)
            for (ix, &it) in buckets[qi].iter().enumerate() {
                let item_demand = &self.arena.demand[it as usize];
                if item_demand[class] == 0 {
                    continue;
                }
                for (ti, tq) in quads.iter().enumerate() {
                    if ti == qi {
                        continue;
                    }
                    // The move must not overflow the target.
                    let mut after = demands[ti];
                    for (a, &b) in after.iter_mut().zip(item_demand) {
                        *a += b;
                    }
                    if self.overflows(tq, &after).is_some() {
                        continue;
                    }
                    let (cx, cy) = tq.center();
                    let dist =
                        (self.gx[it as usize] - cx).abs() + (self.gy[it as usize] - cy).abs();
                    let cost = dist * (1.0 + 4.0 * self.arena.crit[it as usize]);
                    if best.is_none_or(|(_, _, c)| cost < c) {
                        best = Some((ix, ti, cost));
                    }
                }
            }
            let Some((ix, ti, _)) = best else {
                // Nothing movable: leave the overflow for the spill pass.
                return relocated;
            };
            let it = buckets[qi].swap_remove(ix);
            // Re-center the item inside the target quadrant so recursion
            // buckets it correctly.
            let (cx, cy) = quads[ti].center();
            self.gx[it as usize] = cx - 0.25; // nudge off the midline
            self.gy[it as usize] = cy - 0.25;
            demands[qi] = self.demand_of(&buckets[qi]);
            for (a, &b) in demands[ti].iter_mut().zip(&self.arena.demand[it as usize]) {
                *a += b;
            }
            buckets[ti].push(it);
            relocated += 1;
        }
        relocated
    }

    /// Seats a leaf's items (groups first — they need several free slots
    /// at once), replaying the previous pass's outcome when the memo has
    /// a verbatim membership match.
    fn seat_leaf(&mut self, leaf: usize, list: Vec<u32>, memo: &mut RepackMemo) {
        if memo.enabled {
            if let Some(rec) = memo.lookup(self.cols, self.rows, leaf, &list) {
                self.occ[leaf] = rec.occ;
                let mut si = 0usize;
                for &it in &rec.seated {
                    for c in self.arena.cells_of(it) {
                        self.cell_plb[c] = leaf as u32;
                        self.cell_slot[c] = rec.slots[si];
                        si += 1;
                    }
                }
                self.spill.extend_from_slice(&rec.spilled);
                if memo.populated {
                    self.reused += 1;
                }
                return;
            }
            if memo.populated {
                self.repartitioned += 1;
            }
        }
        let mut order = list.clone();
        order.sort_by_key(|&it| Reverse(self.arena.cells_of(it).len()));
        let mut seated: Vec<u32> = Vec::new();
        let mut slots: Vec<u8> = Vec::new();
        let mut spilled: Vec<u32> = Vec::new();
        for &it in &order {
            if self.seat(leaf, it) {
                seated.push(it);
                slots.extend(self.arena.cells_of(it).map(|c| self.cell_slot[c]));
            } else {
                spilled.push(it);
            }
        }
        self.spill.extend_from_slice(&spilled);
        if memo.enabled {
            memo.record(
                self.cols,
                self.rows,
                leaf,
                LeafRecord {
                    items: list,
                    seated,
                    slots,
                    spilled,
                    occ: self.occ[leaf],
                },
            );
        }
    }

    /// Seats an item into the given PLB; returns success. Mirrors
    /// `PlbInstance::place`/`place_flexible`/`place_group{,_flexible}`
    /// over the dense occupancy counters and precomputed seat masks.
    fn seat(&mut self, plb: usize, it: u32) -> bool {
        let range = self.arena.cells_of(it);
        if range.len() > 1 {
            if self.config.flexible {
                // Groups are atomic; members retarget flexibly like
                // singles, with snapshot rollback on failure.
                let snapshot = self.occ[plb];
                for c in range.clone() {
                    if !self.place_flex(plb, c) {
                        self.occ[plb] = snapshot;
                        return false;
                    }
                }
            } else {
                let demand = &self.arena.demand[it as usize];
                let occ = &mut self.occ[plb];
                if (0..NCLASS).any(|k| occ[k] + demand[k] > self.arena.cap[k]) {
                    return false;
                }
                for (o, &d) in occ.iter_mut().zip(demand) {
                    *o += d;
                }
                for c in range.clone() {
                    self.cell_slot[c] = self.arena.cell_class[c];
                }
            }
        } else {
            let c = range.start;
            if self.config.flexible {
                if !self.place_flex(plb, c) {
                    return false;
                }
            } else {
                let k = self.arena.cell_class[c] as usize;
                if self.occ[plb][k] >= self.arena.cap[k] {
                    return false;
                }
                self.occ[plb][k] += 1;
                self.cell_slot[c] = k as u8;
            }
        }
        for c in range {
            self.cell_plb[c] = plb as u32;
        }
        true
    }

    /// `place_flexible` over the occupancy counters: the native class
    /// first, then each compatible alternative in `PLB_CLASSES` order.
    fn place_flex(&mut self, plb: usize, c: usize) -> bool {
        let native = self.arena.cell_class[c] as usize;
        let occ = &mut self.occ[plb];
        if occ[native] < self.arena.cap[native] {
            occ[native] += 1;
            self.cell_slot[c] = native as u8;
            return true;
        }
        let mut mask = self.arena.seat_mask[c] & !(1u8 << native);
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if occ[k] < self.arena.cap[k] {
                occ[k] += 1;
                self.cell_slot[c] = k as u8;
                return true;
            }
        }
        false
    }

    /// Seats an item into the nearest PLB with room, pulling candidates
    /// from a lazy min-heap — pops happen in exactly the order of the
    /// reference's full distance sort (ties by ascending PLB index), but
    /// only as far as the first success.
    fn seat_nearest(&mut self, it: u32) -> bool {
        let (x, y) = (self.gx[it as usize], self.gy[it as usize]);
        let n = self.cols * self.rows;
        let mut backing = std::mem::take(&mut self.heap_scratch);
        backing.clear();
        backing.extend((0..n).map(|i| {
            let (c, r) = (i % self.cols, i / self.cols);
            let d = (c as f64 + 0.5 - x).abs() + (r as f64 + 0.5 - y).abs();
            Reverse((Dist(d), i))
        }));
        let mut heap = BinaryHeap::from(backing);
        let mut done = false;
        while let Some(Reverse((_, index))) = heap.pop() {
            if self.seat(index, it) {
                done = true;
                break;
            }
        }
        self.heap_scratch = heap.into_vec();
        done
    }

    /// Materializes the seated assignments into a [`PlbArray`] (only
    /// called once every item is seated).
    fn into_array(self, arch: &PlbArchitecture) -> PlbArray {
        let mut array = PlbArray::new(arch, self.cols, self.rows);
        for c in 0..self.arena.n_cells() {
            let plb = self.cell_plb[c];
            debug_assert_ne!(plb, NO_PLB, "unseated cell after successful attempt");
            let class = CellClass::PLB_CLASSES[self.cell_slot[c] as usize];
            let seated = array.plb_mut(plb as usize).place(class);
            debug_assert!(seated, "occupancy mismatch during materialization");
            array.assign(self.arena.cell_id[c], plb as usize);
            array.set_slot_class(self.arena.cell_id[c], class);
        }
        array
    }
}

/// The §3.1 iterative loop: pack, pin well-seated cells, re-run physical
/// synthesis for the rest, and pack again. Returns the final array and
/// updates `placement` to the legalized positions.
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_iterative(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &mut Placement,
    place_config: &PlaceConfig,
    config: &PackConfig,
) -> Result<PlbArray, PackError> {
    pack_iterative_with_stats(netlist, arch, placement, place_config, config)
        .map(|(array, _)| array)
}

/// [`pack_iterative`], also returning the accumulated [`PackStats`] across
/// every pack pass of the §3.1 loop.
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_iterative_with_stats(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &mut Placement,
    place_config: &PlaceConfig,
    config: &PackConfig,
) -> Result<(PlbArray, PackStats), PackError> {
    if !(config.target_fill > 0.0 && config.target_fill <= 1.0) {
        return Err(PackError::InvalidTargetFill(config.target_fill));
    }
    let mut arena = ItemArena::build(
        netlist,
        arch,
        config.flexible,
        config.criticality.as_deref(),
    )?;
    arena.refresh_positions(placement);
    let mut stats = PackStats {
        items: arena.items,
        passes: 1,
        ..PackStats::default()
    };
    // The leaf memo persists across repack passes: pass 2+ replays the
    // seating of every leaf whose item membership is unchanged.
    let mut memo = RepackMemo::new(config.incremental);
    let mut array = pack_once(&arena, arch, placement.die(), config, &mut memo, &mut stats)?;
    memo.populated = true;
    for _ in 1..config.iterations.max(1) {
        // Measure displacement of each cell from its assigned PLB centre.
        let mut moved: Vec<(CellId, f64, (f64, f64))> = Vec::new();
        for (id, cell) in netlist.cells() {
            if !matches!(cell.kind(), CellKind::Lib(_)) {
                continue;
            }
            let Some(ix) = array.plb_of(id) else { continue };
            let target = array.plb_center(ix);
            let Some((x, y)) = placement.position(id) else {
                continue;
            };
            // Normalize: the placement die and the array extent differ in
            // scale; compare in fractional coordinates.
            let die = placement.die();
            let fx = (x - die.x0) / die.width().max(1e-9);
            let fy = (y - die.y0) / die.height().max(1e-9);
            let extent = (
                array.cols() as f64 * array.plb_pitch(),
                array.rows() as f64 * array.plb_pitch(),
            );
            let tx = target.0 / extent.0.max(1e-9);
            let ty = target.1 / extent.1.max(1e-9);
            let d = (fx - tx).abs() + (fy - ty).abs();
            moved.push((id, d, target));
        }
        // Pin the best-seated 60 % at their PLB positions (scaled into the
        // current die), re-anneal the rest.
        moved.sort_by(|a, b| a.1.total_cmp(&b.1));
        let pin_count = moved.len() * 6 / 10;
        let die = placement.die();
        let extent = (
            array.cols() as f64 * array.plb_pitch(),
            array.rows() as f64 * array.plb_pitch(),
        );
        let mut pinned: Vec<CellId> = Vec::new();
        for &(id, _, (tx, ty)) in moved.iter().take(pin_count) {
            let x = die.x0 + die.width() * tx / extent.0.max(1e-9);
            let y = die.y0 + die.height() * ty / extent.1.max(1e-9);
            placement.set_position(id, x, y);
            placement.set_fixed(id, true);
            pinned.push(id);
        }
        vpga_place::refine(netlist, arch.library(), placement, place_config, 0.3);
        for id in pinned {
            placement.set_fixed(id, false);
        }
        arena.refresh_positions(placement);
        stats.passes += 1;
        array = pack_once(&arena, arch, placement.die(), config, &mut memo, &mut stats)?;
    }
    apply_to_placement(&array, netlist, placement);
    Ok((array, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpga_netlist::library::generic;
    use vpga_netlist::Netlist;
    use vpga_synth::map_netlist_fast;

    fn mapped_design(design: vpga_designs::NamedDesign, arch: &PlbArchitecture) -> Netlist {
        let params = vpga_designs::DesignParams::tiny();
        let src = generic::library();
        map_netlist_fast(&design.generate(&params), &src, arch).expect("mappable")
    }

    #[test]
    fn packs_all_tiny_designs_on_both_archs() {
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            for design in vpga_designs::NamedDesign::ALL {
                let netlist = mapped_design(design, &arch);
                let placement =
                    vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
                let array = pack(&netlist, &arch, &placement, &PackConfig::default())
                    .unwrap_or_else(|e| panic!("{design} on {}: {e}", arch.name()));
                // Every library cell is assigned.
                let lib_cells = netlist
                    .cells()
                    .filter(|(_, c)| c.lib_id().is_some())
                    .count();
                assert_eq!(array.num_assigned(), lib_cells, "{design}");
            }
        }
    }

    #[test]
    fn per_plb_capacity_is_respected() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let array = pack(&netlist, &arch, &placement, &PackConfig::default()).unwrap();
        for (_, plb) in array.iter() {
            for class in CellClass::PLB_CLASSES {
                assert!(plb.used(class) <= arch.capacity().count(class));
            }
        }
    }

    #[test]
    fn groups_land_in_one_plb() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        // Build a majority gate, which compacts into a grouped multi-cell
        // configuration.
        let mut n = Netlist::new("grp");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let m = n.add_lib_cell("m", &src, "MAJ3", &[a, b, c]).unwrap();
        n.add_output("y", m);
        let mut mapped = map_netlist_fast(&n, &src, &arch).unwrap();
        // Give the realization cells a group explicitly if the mapper
        // produced several cells.
        let cells: Vec<CellId> = mapped
            .cells()
            .filter(|(_, c)| c.lib_id().is_some())
            .map(|(id, _)| id)
            .collect();
        if cells.len() > 1 {
            let g = mapped.new_group();
            for &cell in &cells {
                mapped.set_group(cell, Some(g)).unwrap();
            }
        }
        let placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        let homes: std::collections::HashSet<usize> = cells
            .iter()
            .map(|&c| array.plb_of(c).expect("assigned"))
            .collect();
        assert_eq!(homes.len(), 1, "group split across PLBs");
    }

    #[test]
    fn oversized_group_is_rejected() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let mut n = Netlist::new("big");
        let a = n.add_input("a");
        // Five inverter-ish cells in one group exceed any slot mix.
        let mut cur = a;
        let mut cells = Vec::new();
        for i in 0..5 {
            cur = n
                .add_lib_cell(format!("g{i}"), &src, "INV", &[cur])
                .unwrap();
            cells.push(n.driver(cur).unwrap());
        }
        n.add_output("y", cur);
        let mapped = {
            let mut m = map_netlist_fast(&n, &src, &arch).unwrap();
            let cells: Vec<CellId> = m
                .cells()
                .filter(|(_, c)| c.lib_id().is_some())
                .map(|(id, _)| id)
                .collect();
            let g = m.new_group();
            for &c in &cells {
                m.set_group(c, Some(g)).unwrap();
            }
            m
        };
        let placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let r = pack(&mapped, &arch, &placement, &PackConfig::default());
        assert!(matches!(r, Err(PackError::GroupTooLarge { .. })), "{r:?}");
    }

    #[test]
    fn missing_class_is_reported() {
        // A granular variant without ND3 slots cannot host an AND3 cell,
        // whose function no MUX-capable slot can express.
        let arch = PlbArchitecture::granular_variant("g-no-nd3", 2, 1, 0, 1);
        let src = generic::library();
        let mut n = Netlist::new("and3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_lib_cell("g", &src, "AND3", &[a, b, c]).unwrap();
        n.add_output("y", g);
        // Map against the *full* granular library, which still contains the
        // ND3 cell; only the variant's capacity lacks slots for it.
        let mapped = map_netlist_fast(&n, &src, &PlbArchitecture::granular()).unwrap();
        let uses_nd3 = mapped.cells().any(|(id, _)| {
            mapped
                .instance_function(id, PlbArchitecture::granular().library())
                .is_some_and(|f| !vpga_logic::cells::mux_set().contains(f))
        });
        assert!(uses_nd3, "AND3 must land on the gate slot");
        let placement = vpga_place::place(
            &mapped,
            PlbArchitecture::granular().library(),
            &PlaceConfig::default(),
        );
        let r = pack(&mapped, &arch, &placement, &PackConfig::default());
        assert!(
            matches!(r, Err(PackError::CapacityExceeded { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn flexible_packing_uses_fewer_or_equal_plbs() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Fpu, &arch);
        let placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let rigid = pack(
            &netlist,
            &arch,
            &placement,
            &PackConfig {
                flexible: false,
                ..PackConfig::default()
            },
        );
        let flexible = pack(&netlist, &arch, &placement, &PackConfig::default());
        // Rigid packing may fail outright where flexible succeeds; when
        // both succeed, flexible never uses more PLBs.
        if let (Ok(r), Ok(f)) = (&rigid, &flexible) {
            assert!(f.len() <= r.len() || f.plbs_used() <= r.plbs_used());
        } else {
            assert!(flexible.is_ok());
        }
    }

    #[test]
    fn iterative_packing_reduces_wirelength_versus_single_shot() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let pc = PlaceConfig::default();
        let mut p1 = vpga_place::place(&netlist, arch.library(), &pc);
        let mut p2 = p1.clone();
        let one = pack_iterative(
            &netlist,
            &arch,
            &mut p1,
            &pc,
            &PackConfig {
                iterations: 1,
                ..PackConfig::default()
            },
        )
        .unwrap();
        let looped = pack_iterative(
            &netlist,
            &arch,
            &mut p2,
            &pc,
            &PackConfig {
                iterations: 3,
                ..PackConfig::default()
            },
        )
        .unwrap();
        let w1 = p1.total_hpwl(&netlist);
        let w2 = p2.total_hpwl(&netlist);
        // The loop should not make things dramatically worse; typically it
        // helps. Allow 10 % tolerance for annealing noise.
        assert!(w2 <= w1 * 1.10, "loop {w2} vs single {w1}");
        assert_eq!(one.arch_name(), looped.arch_name());
    }

    #[test]
    fn applied_placement_sits_on_plb_centers() {
        let arch = PlbArchitecture::lut_based();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let mut placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let array = pack(&netlist, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &netlist, &mut placement);
        for (id, cell) in netlist.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            let ix = array.plb_of(id).expect("assigned");
            assert_eq!(placement.position(id), Some(array.plb_center(ix)));
        }
    }

    #[test]
    fn incremental_toggle_is_bit_identical() {
        // The leaf memo must be a pure optimization: every counter except
        // the reuse instrumentation, every assignment, and the final
        // placement agree bit-for-bit with the memo disabled.
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::NetworkSwitch, &arch);
        let pc = PlaceConfig::default();
        let p0 = vpga_place::place(&netlist, arch.library(), &pc);
        let mut p_inc = p0.clone();
        let mut p_full = p0;
        let cfg = PackConfig {
            iterations: 3,
            ..PackConfig::default()
        };
        let (a_inc, s_inc) =
            pack_iterative_with_stats(&netlist, &arch, &mut p_inc, &pc, &cfg).unwrap();
        let (a_full, s_full) = pack_iterative_with_stats(
            &netlist,
            &arch,
            &mut p_full,
            &pc,
            &PackConfig {
                incremental: false,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(
            PackStats {
                regions_reused: 0,
                subtrees_repartitioned: 0,
                ..s_inc
            },
            s_full
        );
        assert_eq!(s_full.regions_reused, 0);
        assert_eq!(s_full.subtrees_repartitioned, 0);
        for (id, cell) in netlist.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            assert_eq!(a_inc.plb_of(id), a_full.plb_of(id));
            assert_eq!(a_inc.slot_class_of(id), a_full.slot_class_of(id));
            assert_eq!(
                p_inc.position(id).map(|(x, y)| (x.to_bits(), y.to_bits())),
                p_full.position(id).map(|(x, y)| (x.to_bits(), y.to_bits()))
            );
        }
    }
}
