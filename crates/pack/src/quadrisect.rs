//! The recursive-quadrisection packing algorithm and the pack↔place loop.

use std::collections::HashMap;

use vpga_core::{PlbArchitecture, SlotSet};
use vpga_logic::Tt3;
use vpga_netlist::{CellClass, CellId, CellKind, GroupId, Netlist};
use vpga_place::{PlaceConfig, Placement};

use crate::array::{PackError, PlbArray};

/// Tunables for [`pack`] and [`pack_iterative`].
#[derive(Clone, Debug)]
pub struct PackConfig {
    /// Array-sizing headroom: the array is sized so the binding resource
    /// class is at most this full. Lower values give easier packing and a
    /// larger die.
    pub target_fill: f64,
    /// Enable the §3.2 flexibility rule: a cell may take a slot of another
    /// class when its via-programmed function allows it.
    pub flexible: bool,
    /// Iterations of the §3.1 pack ↔ physical-synthesis loop (1 = a single
    /// pack with no replacement).
    pub iterations: usize,
    /// Per-cell timing criticality in `[0, 1]`, indexed by
    /// [`CellId::index`]; weights the relocation cost.
    pub criticality: Option<Vec<f64>>,
    /// Retries with a grown array if packing fails.
    pub growth_retries: usize,
}

impl Default for PackConfig {
    fn default() -> PackConfig {
        PackConfig {
            target_fill: 0.85,
            flexible: true,
            iterations: 2,
            criticality: None,
            growth_retries: 8,
        }
    }
}

/// One movable unit: a single component cell or a whole compaction group.
#[derive(Clone, Debug)]
struct Item {
    cells: Vec<(CellId, CellClass, Option<Tt3>)>,
    demand: SlotSet,
    /// Position in normalized grid coordinates (0..cols, 0..rows).
    gx: f64,
    gy: f64,
    criticality: f64,
}

/// Counters from one quadrisection packing run (accumulated over the
/// grow-and-retry attempts, and over repack passes in
/// [`pack_iterative_with_stats`]) — the per-stage instrumentation the flow
/// executor reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Movable units (cells plus whole compaction groups) packed.
    pub items: usize,
    /// Items relocated between quadrants by the resource-balancing step.
    pub relocations: u64,
    /// Items the recursion could not seat geometrically, handled by the
    /// nearest-fit spill pass.
    pub spilled: u64,
    /// Array-growth retries taken before the design fit.
    pub growth_retries: u32,
    /// Full quadrisection passes run (> 1 only for the §3.1 loop).
    pub passes: u32,
}

/// Packs the placed netlist into a PLB array of `arch`. The placement is
/// read-only; apply the result with [`apply_to_placement`].
///
/// # Errors
///
/// * [`PackError::InvalidTargetFill`] if `config.target_fill` is outside
///   `(0, 1]`,
/// * [`PackError::ForeignCell`] if the netlist was mapped against a
///   different library,
/// * [`PackError::GroupTooLarge`] if a compaction group exceeds one PLB,
/// * [`PackError::Unpackable`] if the design cannot be seated even after
///   growing the array `config.growth_retries` times.
pub fn pack(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &Placement,
    config: &PackConfig,
) -> Result<PlbArray, PackError> {
    pack_with_stats(netlist, arch, placement, config).map(|(array, _)| array)
}

/// [`pack`], also returning the packer's [`PackStats`].
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_with_stats(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &Placement,
    config: &PackConfig,
) -> Result<(PlbArray, PackStats), PackError> {
    if !(config.target_fill > 0.0 && config.target_fill <= 1.0) {
        return Err(PackError::InvalidTargetFill(config.target_fill));
    }
    let lib = arch.library();
    // Collect items: groups first, then singleton cells.
    let mut group_items: HashMap<GroupId, Item> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();
    let crit = |cell: CellId| -> f64 {
        config
            .criticality
            .as_ref()
            .and_then(|v| v.get(cell.index()).copied())
            .unwrap_or(0.0)
    };
    for (id, cell) in netlist.cells() {
        let CellKind::Lib(lib_id) = cell.kind() else {
            continue;
        };
        let lc = lib.cell(lib_id).ok_or_else(|| PackError::ForeignCell {
            cell: netlist.cell_name(id).to_owned(),
        })?;
        let class = lc.class();
        let function = netlist.instance_function(id, lib);
        let (x, y) = placement.position(id).unwrap_or((0.0, 0.0));
        match cell.group() {
            Some(g) => {
                let item = group_items.entry(g).or_insert_with(|| Item {
                    cells: Vec::new(),
                    demand: SlotSet::new(),
                    gx: 0.0,
                    gy: 0.0,
                    criticality: 0.0,
                });
                item.cells.push((id, class, function));
                item.demand.add(class, 1);
                item.gx += x;
                item.gy += y;
                item.criticality = item.criticality.max(crit(id));
            }
            None => {
                let mut demand = SlotSet::new();
                demand.add(class, 1);
                items.push(Item {
                    cells: vec![(id, class, function)],
                    demand,
                    gx: x,
                    gy: y,
                    criticality: crit(id),
                });
            }
        }
    }
    // HashMap iteration order is per-process random; the item list seeds
    // every downstream tie-break (quadrisection bucket order, swap
    // schedule), so drain the groups in GroupId order to keep packing
    // bit-identical across runs and worker counts.
    let mut grouped: Vec<(GroupId, Item)> = group_items.into_iter().collect();
    grouped.sort_unstable_by_key(|&(g, _)| g);
    for (_, mut item) in grouped {
        let n = item.cells.len() as f64;
        item.gx /= n;
        item.gy /= n;
        if !item.demand.fits(arch.capacity()) {
            return Err(PackError::GroupTooLarge {
                demand: item.demand,
            });
        }
        items.push(item);
    }
    let mut stats = PackStats {
        items: items.len(),
        passes: 1,
        ..PackStats::default()
    };
    // Total demand per class.
    let mut totals = SlotSet::new();
    for item in &items {
        totals = totals.plus(&item.demand);
    }
    // Minimum PLB count. When flexible placement is on, each cell's
    // function may be hosted by several slot classes (the §3.2 flexibility
    // that gives the granular PLB its packing efficiency). The exact
    // counting bound is: for every subset S of slot classes, the cells
    // whose compatible-class sets lie entirely inside S must fit within
    // S's pooled capacity. With seven classes that is 128 subsets —
    // enumerated exactly.
    let mut n_plbs = items
        .len()
        .max(1)
        .div_ceil(arch.capacity().total() as usize);
    let class_bit = |class: CellClass| -> u32 {
        CellClass::PLB_CLASSES
            .iter()
            .position(|&c| c == class)
            .expect("PLB class") as u32
    };
    let mut fit_cache: HashMap<(CellClass, Option<Tt3>), u8> = HashMap::new();
    let mut demand_by_mask: HashMap<u8, usize> = HashMap::new();
    for item in &items {
        for &(_, class, function) in &item.cells {
            let mask = if class.is_sequential() || !config.flexible {
                1u8 << class_bit(class)
            } else {
                *fit_cache.entry((class, function)).or_insert_with(|| {
                    compatible_classes(arch, class, function)
                        .into_iter()
                        .fold(0u8, |m, c| m | (1 << class_bit(c)))
                })
            };
            *demand_by_mask.entry(mask).or_insert(0) += 1;
        }
    }
    // Per-class hard infeasibility check (class with demand but no slots
    // anywhere and no alternative host).
    for class in CellClass::PLB_CLASSES {
        let total = totals.count(class) as usize;
        if total > 0 && arch.capacity().count(class) == 0 {
            let bit = 1u8 << class_bit(class);
            let stuck = demand_by_mask
                .iter()
                .filter(|&(&m, _)| m == bit)
                .map(|(_, &n)| n)
                .sum::<usize>();
            if stuck > 0 {
                return Err(PackError::CapacityExceeded {
                    class,
                    demand: total,
                    available: 0,
                });
            }
        }
    }
    for subset in 1u16..128 {
        let subset = subset as u8;
        let cap: usize = CellClass::PLB_CLASSES
            .iter()
            .enumerate()
            .filter(|&(i, _)| subset & (1 << i) != 0)
            .map(|(_, &c)| arch.capacity().count(c) as usize)
            .sum();
        let demand: usize = demand_by_mask
            .iter()
            .filter(|&(&m, _)| m & !subset == 0)
            .map(|(_, &n)| n)
            .sum();
        if demand == 0 {
            continue;
        }
        if cap == 0 {
            // Some cell fits only classes this architecture lacks.
            let class = CellClass::PLB_CLASSES
                .iter()
                .enumerate()
                .find(|&(i, _)| subset & (1 << i) != 0)
                .map(|(_, &c)| c)
                .expect("non-empty subset");
            return Err(PackError::CapacityExceeded {
                class,
                demand,
                available: 0,
            });
        }
        let need = (demand as f64 / (cap as f64 * config.target_fill)).ceil() as usize;
        n_plbs = n_plbs.max(need);
    }
    // Grow-and-retry loop.
    let mut attempt_plbs = n_plbs;
    for retry in 0..=config.growth_retries {
        let cols = (attempt_plbs as f64).sqrt().ceil() as usize;
        let rows = attempt_plbs.div_ceil(cols);
        let mut array = PlbArray::new(arch, cols, rows);
        // Normalize item positions into grid coordinates.
        let die = placement.die();
        let mut grid_items = items.clone();
        for item in grid_items.iter_mut() {
            item.gx = ((item.gx - die.x0) / die.width().max(1e-9) * cols as f64)
                .clamp(0.0, cols as f64 - 1e-6);
            item.gy = ((item.gy - die.y0) / die.height().max(1e-9) * rows as f64)
                .clamp(0.0, rows as f64 - 1e-6);
        }
        let mut spill: Vec<Item> = Vec::new();
        quadrisect(
            arch,
            &mut array,
            Region {
                c0: 0,
                c1: cols,
                r0: 0,
                r1: rows,
            },
            grid_items,
            config,
            &mut spill,
            &mut stats,
        );
        stats.spilled += spill.len() as u64;
        // Spill pass: hardest items first (groups, then the least flexible
        // single cells), each into the nearest PLB with room.
        spill.sort_by(|a, b| {
            b.cells
                .len()
                .cmp(&a.cells.len())
                .then_with(|| a.criticality.total_cmp(&b.criticality).reverse())
        });
        let mut leftover = 0usize;
        for item in spill {
            if !seat_nearest(arch, &mut array, &item, config) {
                leftover += 1;
                if std::env::var_os("VPGA_PACK_DEBUG").is_some() {
                    eprintln!(
                        "unseated item: {} cells, demand {}",
                        item.cells.len(),
                        item.demand
                    );
                }
            }
        }
        if leftover == 0 {
            stats.growth_retries = retry as u32;
            return Ok((array, stats));
        }
        if retry == config.growth_retries {
            return Err(PackError::Unpackable { leftover });
        }
        // Escalating growth: gentle first (stay near the sizing bound),
        // aggressive later (fragmentation by groups can need real slack).
        let factor = match retry {
            0..=2 => 1.06,
            3..=4 => 1.12,
            5..=6 => 1.25,
            _ => 1.5,
        };
        attempt_plbs = (attempt_plbs as f64 * factor).ceil() as usize + 1;
    }
    unreachable!("loop returns or errors")
}

/// Writes the packed locations back into the placement: every cell moves to
/// its PLB centre, the die becomes the array extent, and the I/O pads are
/// rescaled onto the new periphery.
pub fn apply_to_placement(array: &PlbArray, netlist: &Netlist, placement: &mut Placement) {
    let old = placement.die();
    let pitch = array.plb_pitch();
    let new = vpga_place::Rect {
        x0: 0.0,
        y0: 0.0,
        x1: array.cols() as f64 * pitch,
        y1: array.rows() as f64 * pitch,
    };
    placement.set_die(new);
    for &port in netlist.inputs().iter().chain(netlist.outputs()) {
        if let Some((x, y)) = placement.position(port) {
            let fx = (x - old.x0) / old.width().max(1e-9);
            let fy = (y - old.y0) / old.height().max(1e-9);
            placement.set_position(port, new.x0 + fx * new.width(), new.y0 + fy * new.height());
        }
    }
    for (id, cell) in netlist.cells() {
        if !matches!(cell.kind(), CellKind::Lib(_)) {
            continue;
        }
        if let Some(ix) = array.plb_of(id) {
            let (x, y) = array.plb_center(ix);
            placement.set_position(id, x, y);
        }
    }
}

/// Slot classes that can host a cell of `class` computing `function`.
fn compatible_classes(
    arch: &PlbArchitecture,
    class: CellClass,
    function: Option<Tt3>,
) -> Vec<CellClass> {
    let mut out = vec![class];
    let Some(f) = function else { return out };
    for alt in CellClass::PLB_CLASSES {
        if alt == class || alt.is_sequential() || arch.capacity().count(alt) == 0 {
            continue;
        }
        let Some(cell) = arch.slot_cell(alt) else {
            continue;
        };
        if vpga_core::matcher::match_cell(cell, f, 3).is_some() {
            out.push(alt);
        }
    }
    out
}

#[derive(Clone, Copy, Debug)]
struct Region {
    c0: usize,
    c1: usize,
    r0: usize,
    r1: usize,
}

impl Region {
    fn plbs(&self) -> usize {
        (self.c1 - self.c0) * (self.r1 - self.r0)
    }

    fn center(&self) -> (f64, f64) {
        (
            (self.c0 + self.c1) as f64 / 2.0,
            (self.r0 + self.r1) as f64 / 2.0,
        )
    }

    fn capacity(&self, arch: &PlbArchitecture, class: CellClass) -> usize {
        self.plbs() * arch.capacity().count(class) as usize
    }
}

fn quadrisect(
    arch: &PlbArchitecture,
    array: &mut PlbArray,
    region: Region,
    items: Vec<Item>,
    config: &PackConfig,
    spill: &mut Vec<Item>,
    stats: &mut PackStats,
) {
    if items.is_empty() {
        return;
    }
    if region.plbs() == 1 {
        let index = array.index_of(region.c0, region.r0);
        // Groups first: they need several free slots at once.
        let mut items = items;
        items.sort_by_key(|i| std::cmp::Reverse(i.cells.len()));
        for item in items {
            if !seat(arch, array, index, &item, config) {
                spill.push(item);
            }
        }
        return;
    }
    // Split into quadrants (degenerate strips split in the long direction).
    let cm = if region.c1 - region.c0 > 1 {
        (region.c0 + region.c1) / 2
    } else {
        region.c1
    };
    let rm = if region.r1 - region.r0 > 1 {
        (region.r0 + region.r1) / 2
    } else {
        region.r1
    };
    let mut quads: Vec<Region> = Vec::new();
    for (c0, c1) in [(region.c0, cm), (cm, region.c1)] {
        if c0 >= c1 {
            continue;
        }
        for (r0, r1) in [(region.r0, rm), (rm, region.r1)] {
            if r0 >= r1 {
                continue;
            }
            quads.push(Region { c0, c1, r0, r1 });
        }
    }
    // Geometric assignment.
    let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); quads.len()];
    for item in items {
        let q = quads
            .iter()
            .position(|q| {
                item.gx >= q.c0 as f64
                    && item.gx < q.c1 as f64
                    && item.gy >= q.r0 as f64
                    && item.gy < q.r1 as f64
            })
            .unwrap_or(0);
        buckets[q].push(item);
    }
    // Resource balancing: relocate overflow items to quadrants with room,
    // cheapest (criticality-weighted displacement) first.
    stats.relocations += balance(arch, &quads, &mut buckets, config);
    for (q, bucket) in quads.iter().zip(buckets) {
        quadrisect(arch, array, *q, bucket, config, spill, stats);
    }
}

fn demand_of(bucket: &[Item]) -> SlotSet {
    let mut d = SlotSet::new();
    for item in bucket {
        d = d.plus(&item.demand);
    }
    d
}

fn overflows(arch: &PlbArchitecture, region: &Region, demand: &SlotSet) -> Option<CellClass> {
    CellClass::PLB_CLASSES
        .into_iter()
        .find(|&class| (demand.count(class) as usize) > region.capacity(arch, class))
}

fn balance(
    arch: &PlbArchitecture,
    quads: &[Region],
    buckets: &mut [Vec<Item>],
    config: &PackConfig,
) -> u64 {
    let mut relocated = 0u64;
    let mut demands: Vec<SlotSet> = buckets.iter().map(|b| demand_of(b)).collect();
    // Bounded relocation loop.
    for _ in 0..10_000 {
        let Some((qi, class)) = quads
            .iter()
            .enumerate()
            .find_map(|(i, q)| overflows(arch, q, &demands[i]).map(|c| (i, c)))
        else {
            return relocated; // feasible everywhere
        };
        // Candidate items in the overfull quadrant that use the class.
        let mut best: Option<(usize, usize, f64)> = None; // (item ix, target quad, cost)
        for (ix, item) in buckets[qi].iter().enumerate() {
            if item.demand.count(class) == 0 {
                continue;
            }
            for (ti, tq) in quads.iter().enumerate() {
                if ti == qi {
                    continue;
                }
                // The move must not overflow the target.
                let after = demands[ti].plus(&item.demand);
                if overflows(arch, tq, &after).is_some() {
                    continue;
                }
                let (cx, cy) = tq.center();
                let dist = (item.gx - cx).abs() + (item.gy - cy).abs();
                let cost = dist * (1.0 + 4.0 * item.criticality);
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((ix, ti, cost));
                }
            }
        }
        let Some((ix, ti, _)) = best else {
            // Nothing movable: leave the overflow for the spill pass.
            return relocated;
        };
        let mut item = buckets[qi].swap_remove(ix);
        // Re-center the item inside the target quadrant so recursion
        // buckets it correctly.
        let (cx, cy) = quads[ti].center();
        item.gx = cx - 0.25; // nudge off the midline
        item.gy = cy - 0.25;
        demands[qi] = demand_of(&buckets[qi]);
        demands[ti] = demands[ti].plus(&item.demand);
        buckets[ti].push(item);
        relocated += 1;
    }
    let _ = config;
    relocated
}

/// Seats an item into the given PLB; returns success.
fn seat(
    arch: &PlbArchitecture,
    array: &mut PlbArray,
    index: usize,
    item: &Item,
    config: &PackConfig,
) -> bool {
    if item.cells.len() > 1 {
        // Groups are atomic; members retarget flexibly like singles.
        let members: Vec<(CellClass, Option<Tt3>)> =
            item.cells.iter().map(|&(_, c, f)| (c, f)).collect();
        let landed: Option<Vec<CellClass>> = if config.flexible {
            array.plb_mut(index).place_group_flexible(arch, &members)
        } else if array.plb_mut(index).place_group(&item.demand) {
            Some(members.iter().map(|&(c, _)| c).collect())
        } else {
            None
        };
        let Some(landed) = landed else { return false };
        for (&(cell, _, _), slot) in item.cells.iter().zip(landed) {
            array.assign(cell, index);
            array.set_slot_class(cell, slot);
        }
        return true;
    }
    let (cell, class, function) = item.cells[0];
    let landed = if config.flexible {
        array.plb_mut(index).place_flexible(arch, class, function)
    } else if array.plb_mut(index).place(class) {
        Some(class)
    } else {
        None
    };
    match landed {
        Some(slot) => {
            array.assign(cell, index);
            array.set_slot_class(cell, slot);
            true
        }
        None => false,
    }
}

/// Seats an item into the nearest PLB with room.
fn seat_nearest(
    arch: &PlbArchitecture,
    array: &mut PlbArray,
    item: &Item,
    config: &PackConfig,
) -> bool {
    let mut order: Vec<usize> = (0..array.len()).collect();
    order.sort_by(|&a, &b| {
        let (ac, ar) = array.position_of(a);
        let (bc, br) = array.position_of(b);
        let da = (ac as f64 + 0.5 - item.gx).abs() + (ar as f64 + 0.5 - item.gy).abs();
        let db = (bc as f64 + 0.5 - item.gx).abs() + (br as f64 + 0.5 - item.gy).abs();
        da.total_cmp(&db)
    });
    for index in order {
        if seat(arch, array, index, item, config) {
            return true;
        }
    }
    false
}

/// The §3.1 iterative loop: pack, pin well-seated cells, re-run physical
/// synthesis for the rest, and pack again. Returns the final array and
/// updates `placement` to the legalized positions.
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_iterative(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &mut Placement,
    place_config: &PlaceConfig,
    config: &PackConfig,
) -> Result<PlbArray, PackError> {
    pack_iterative_with_stats(netlist, arch, placement, place_config, config)
        .map(|(array, _)| array)
}

/// [`pack_iterative`], also returning the accumulated [`PackStats`] across
/// every pack pass of the §3.1 loop.
///
/// # Errors
///
/// Propagates [`pack`] errors.
pub fn pack_iterative_with_stats(
    netlist: &Netlist,
    arch: &PlbArchitecture,
    placement: &mut Placement,
    place_config: &PlaceConfig,
    config: &PackConfig,
) -> Result<(PlbArray, PackStats), PackError> {
    let (mut array, mut stats) = pack_with_stats(netlist, arch, placement, config)?;
    for _ in 1..config.iterations.max(1) {
        // Measure displacement of each cell from its assigned PLB centre.
        let mut moved: Vec<(CellId, f64, (f64, f64))> = Vec::new();
        for (id, cell) in netlist.cells() {
            if !matches!(cell.kind(), CellKind::Lib(_)) {
                continue;
            }
            let Some(ix) = array.plb_of(id) else { continue };
            let target = array.plb_center(ix);
            let Some((x, y)) = placement.position(id) else {
                continue;
            };
            // Normalize: the placement die and the array extent differ in
            // scale; compare in fractional coordinates.
            let die = placement.die();
            let fx = (x - die.x0) / die.width().max(1e-9);
            let fy = (y - die.y0) / die.height().max(1e-9);
            let extent = (
                array.cols() as f64 * array.plb_pitch(),
                array.rows() as f64 * array.plb_pitch(),
            );
            let tx = target.0 / extent.0.max(1e-9);
            let ty = target.1 / extent.1.max(1e-9);
            let d = (fx - tx).abs() + (fy - ty).abs();
            moved.push((id, d, target));
        }
        // Pin the best-seated 60 % at their PLB positions (scaled into the
        // current die), re-anneal the rest.
        moved.sort_by(|a, b| a.1.total_cmp(&b.1));
        let pin_count = moved.len() * 6 / 10;
        let die = placement.die();
        let extent = (
            array.cols() as f64 * array.plb_pitch(),
            array.rows() as f64 * array.plb_pitch(),
        );
        let mut pinned: Vec<CellId> = Vec::new();
        for &(id, _, (tx, ty)) in moved.iter().take(pin_count) {
            let x = die.x0 + die.width() * tx / extent.0.max(1e-9);
            let y = die.y0 + die.height() * ty / extent.1.max(1e-9);
            placement.set_position(id, x, y);
            placement.set_fixed(id, true);
            pinned.push(id);
        }
        vpga_place::refine(netlist, arch.library(), placement, place_config, 0.3);
        for id in pinned {
            placement.set_fixed(id, false);
        }
        let (repacked, pass) = pack_with_stats(netlist, arch, placement, config)?;
        array = repacked;
        stats.relocations += pass.relocations;
        stats.spilled += pass.spilled;
        stats.growth_retries += pass.growth_retries;
        stats.passes += pass.passes;
    }
    apply_to_placement(&array, netlist, placement);
    Ok((array, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpga_netlist::library::generic;
    use vpga_netlist::Netlist;
    use vpga_synth::map_netlist_fast;

    fn mapped_design(design: vpga_designs::NamedDesign, arch: &PlbArchitecture) -> Netlist {
        let params = vpga_designs::DesignParams::tiny();
        let src = generic::library();
        map_netlist_fast(&design.generate(&params), &src, arch).expect("mappable")
    }

    #[test]
    fn packs_all_tiny_designs_on_both_archs() {
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            for design in vpga_designs::NamedDesign::ALL {
                let netlist = mapped_design(design, &arch);
                let placement =
                    vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
                let array = pack(&netlist, &arch, &placement, &PackConfig::default())
                    .unwrap_or_else(|e| panic!("{design} on {}: {e}", arch.name()));
                // Every library cell is assigned.
                let lib_cells = netlist
                    .cells()
                    .filter(|(_, c)| c.lib_id().is_some())
                    .count();
                assert_eq!(array.num_assigned(), lib_cells, "{design}");
            }
        }
    }

    #[test]
    fn per_plb_capacity_is_respected() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let array = pack(&netlist, &arch, &placement, &PackConfig::default()).unwrap();
        for (_, plb) in array.iter() {
            for class in CellClass::PLB_CLASSES {
                assert!(plb.used(class) <= arch.capacity().count(class));
            }
        }
    }

    #[test]
    fn groups_land_in_one_plb() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        // Build a majority gate, which compacts into a grouped multi-cell
        // configuration.
        let mut n = Netlist::new("grp");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let m = n.add_lib_cell("m", &src, "MAJ3", &[a, b, c]).unwrap();
        n.add_output("y", m);
        let mut mapped = map_netlist_fast(&n, &src, &arch).unwrap();
        // Give the realization cells a group explicitly if the mapper
        // produced several cells.
        let cells: Vec<CellId> = mapped
            .cells()
            .filter(|(_, c)| c.lib_id().is_some())
            .map(|(id, _)| id)
            .collect();
        if cells.len() > 1 {
            let g = mapped.new_group();
            for &cell in &cells {
                mapped.set_group(cell, Some(g)).unwrap();
            }
        }
        let placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let array = pack(&mapped, &arch, &placement, &PackConfig::default()).unwrap();
        let homes: std::collections::HashSet<usize> = cells
            .iter()
            .map(|&c| array.plb_of(c).expect("assigned"))
            .collect();
        assert_eq!(homes.len(), 1, "group split across PLBs");
    }

    #[test]
    fn oversized_group_is_rejected() {
        let arch = PlbArchitecture::granular();
        let src = generic::library();
        let mut n = Netlist::new("big");
        let a = n.add_input("a");
        // Five inverter-ish cells in one group exceed any slot mix.
        let mut cur = a;
        let mut cells = Vec::new();
        for i in 0..5 {
            cur = n
                .add_lib_cell(format!("g{i}"), &src, "INV", &[cur])
                .unwrap();
            cells.push(n.driver(cur).unwrap());
        }
        n.add_output("y", cur);
        let mapped = {
            let mut m = map_netlist_fast(&n, &src, &arch).unwrap();
            let cells: Vec<CellId> = m
                .cells()
                .filter(|(_, c)| c.lib_id().is_some())
                .map(|(id, _)| id)
                .collect();
            let g = m.new_group();
            for &c in &cells {
                m.set_group(c, Some(g)).unwrap();
            }
            m
        };
        let placement = vpga_place::place(&mapped, arch.library(), &PlaceConfig::default());
        let r = pack(&mapped, &arch, &placement, &PackConfig::default());
        assert!(matches!(r, Err(PackError::GroupTooLarge { .. })), "{r:?}");
    }

    #[test]
    fn missing_class_is_reported() {
        // A granular variant without ND3 slots cannot host an AND3 cell,
        // whose function no MUX-capable slot can express.
        let arch = PlbArchitecture::granular_variant("g-no-nd3", 2, 1, 0, 1);
        let src = generic::library();
        let mut n = Netlist::new("and3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_lib_cell("g", &src, "AND3", &[a, b, c]).unwrap();
        n.add_output("y", g);
        // Map against the *full* granular library, which still contains the
        // ND3 cell; only the variant's capacity lacks slots for it.
        let mapped = map_netlist_fast(&n, &src, &PlbArchitecture::granular()).unwrap();
        let uses_nd3 = mapped.cells().any(|(id, _)| {
            mapped
                .instance_function(id, PlbArchitecture::granular().library())
                .is_some_and(|f| !vpga_logic::cells::mux_set().contains(f))
        });
        assert!(uses_nd3, "AND3 must land on the gate slot");
        let placement = vpga_place::place(
            &mapped,
            PlbArchitecture::granular().library(),
            &PlaceConfig::default(),
        );
        let r = pack(&mapped, &arch, &placement, &PackConfig::default());
        assert!(
            matches!(r, Err(PackError::CapacityExceeded { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn flexible_packing_uses_fewer_or_equal_plbs() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Fpu, &arch);
        let placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let rigid = pack(
            &netlist,
            &arch,
            &placement,
            &PackConfig {
                flexible: false,
                ..PackConfig::default()
            },
        );
        let flexible = pack(&netlist, &arch, &placement, &PackConfig::default());
        // Rigid packing may fail outright where flexible succeeds; when
        // both succeed, flexible never uses more PLBs.
        if let (Ok(r), Ok(f)) = (&rigid, &flexible) {
            assert!(f.len() <= r.len() || f.plbs_used() <= r.plbs_used());
        } else {
            assert!(flexible.is_ok());
        }
    }

    #[test]
    fn iterative_packing_reduces_wirelength_versus_single_shot() {
        let arch = PlbArchitecture::granular();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let pc = PlaceConfig::default();
        let mut p1 = vpga_place::place(&netlist, arch.library(), &pc);
        let mut p2 = p1.clone();
        let one = pack_iterative(
            &netlist,
            &arch,
            &mut p1,
            &pc,
            &PackConfig {
                iterations: 1,
                ..PackConfig::default()
            },
        )
        .unwrap();
        let looped = pack_iterative(
            &netlist,
            &arch,
            &mut p2,
            &pc,
            &PackConfig {
                iterations: 3,
                ..PackConfig::default()
            },
        )
        .unwrap();
        let w1 = p1.total_hpwl(&netlist);
        let w2 = p2.total_hpwl(&netlist);
        // The loop should not make things dramatically worse; typically it
        // helps. Allow 10 % tolerance for annealing noise.
        assert!(w2 <= w1 * 1.10, "loop {w2} vs single {w1}");
        assert_eq!(one.arch_name(), looped.arch_name());
    }

    #[test]
    fn applied_placement_sits_on_plb_centers() {
        let arch = PlbArchitecture::lut_based();
        let netlist = mapped_design(vpga_designs::NamedDesign::Alu, &arch);
        let mut placement = vpga_place::place(&netlist, arch.library(), &PlaceConfig::default());
        let array = pack(&netlist, &arch, &placement, &PackConfig::default()).unwrap();
        apply_to_placement(&array, &netlist, &mut placement);
        for (id, cell) in netlist.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            let ix = array.plb_of(id).expect("assigned");
            assert_eq!(placement.position(id), Some(array.plb_center(ix)));
        }
    }
}
