//! Paper-scale pack/swap wall-clock profile: generates the 80k-gate
//! network switch, runs the front of the flow once (map → compact → place),
//! then times `pack_iterative` and `swap_optimize` — the two back-end
//! stages this crate owns. The BENCH_pack_swap.json paper-scale rows come
//! from this harness.
//!
//! Usage: `cargo run --release -p vpga-pack --example pack_profile [size]`
//! (size = tiny | small | medium | paper; default paper).

use std::time::Instant;

use vpga_core::PlbArchitecture;
use vpga_pack::{PackConfig, SwapConfig};
use vpga_place::PlaceConfig;

fn main() {
    let size = std::env::args().nth(1).unwrap_or_else(|| "paper".into());
    let params = match size.as_str() {
        "tiny" => vpga_designs::DesignParams::tiny(),
        "small" => vpga_designs::DesignParams::small(),
        "paper" => vpga_designs::DesignParams::paper(),
        other => {
            eprintln!("unknown size {other:?} (tiny|small|paper)");
            std::process::exit(2);
        }
    };
    let arch = PlbArchitecture::granular();
    let src = vpga_netlist::library::generic::library();
    let t = Instant::now();
    let design = vpga_designs::NamedDesign::NetworkSwitch.generate(&params);
    let mut netlist = vpga_synth::map_netlist_fast(&design, &src, &arch).expect("mappable");
    let _ = vpga_compact::compact(&mut netlist, &arch).expect("compactable");
    eprintln!(
        "front (gen+map+compact): {:.1?}, {} cells",
        t.elapsed(),
        netlist.cells().count()
    );
    let pc = PlaceConfig::default();
    let t = Instant::now();
    let mut placement = vpga_place::place(&netlist, arch.library(), &pc);
    eprintln!("place: {:.1?}", t.elapsed());

    let t = Instant::now();
    let (mut array, stats) = vpga_pack::pack_iterative_with_stats(
        &netlist,
        &arch,
        &mut placement,
        &pc,
        &PackConfig::default(),
    )
    .expect("packable");
    let pack_wall = t.elapsed();
    eprintln!("pack_iterative: {pack_wall:.1?}  {stats:?}");

    let t = Instant::now();
    let (gain, sstats) = vpga_pack::swap_optimize_with_stats(
        &mut array,
        &netlist,
        &mut placement,
        &SwapConfig::default(),
    );
    let swap_wall = t.elapsed();
    eprintln!("swap: {swap_wall:.1?}  gain {gain:.4}  {sstats:?}");
    println!(
        "{{\"size\":\"{size}\",\"pack_ms\":{:.1},\"swap_ms\":{:.1},\"hpwl\":{:.3}}}",
        pack_wall.as_secs_f64() * 1e3,
        swap_wall.as_secs_f64() * 1e3,
        placement.total_hpwl(&netlist)
    );
}
