//! Property-based determinism for the incremental back-end: the
//! dirty-region repack memo and the delta-cost swap engine must be
//! **bit-identical** to their full-recompute formulations — final
//! positions, assignment tables, cost bits, and every fingerprinted
//! counter — on random netlists, iteration counts, fill targets, and
//! seeds.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpga_core::PlbArchitecture;
use vpga_netlist::library::generic;
use vpga_netlist::{Library, NetId, Netlist};
use vpga_pack::{PackConfig, SwapConfig};
use vpga_place::PlaceConfig;

/// Combinational/sequential cell menu with pin arities.
const MENU: &[(&str, usize)] = &[
    ("INV", 1),
    ("BUF", 1),
    ("NAND2", 2),
    ("XOR2", 2),
    ("AND3", 3),
    ("MAJ3", 3),
    ("DFF", 1),
];

/// Builds a random layered DAG netlist (always acyclic).
fn random_netlist(rng: &mut SmallRng, lib: &Library) -> Netlist {
    let mut n = Netlist::new("rand");
    let n_inputs = rng.gen_range(2usize..6);
    let n_cells = rng.gen_range(20usize..120);
    let n_outputs = rng.gen_range(1usize..5);
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| n.add_input(format!("i{i}")))
        .collect();
    for c in 0..n_cells {
        let (name, arity) = MENU[rng.gen_range(0usize..MENU.len())];
        let ins: Vec<NetId> = (0..arity)
            .map(|_| nets[rng.gen_range(0usize..nets.len())])
            .collect();
        let out = n
            .add_lib_cell(format!("c{c}"), lib, name, &ins)
            .expect("menu cells exist");
        nets.push(out);
    }
    for o in 0..n_outputs {
        let net = nets[rng.gen_range(0usize..nets.len())];
        n.add_output(format!("y{o}"), net);
    }
    n
}

/// Maps (and compacts, to exercise grouped items) a random netlist onto
/// the granular architecture. Compaction is best-effort: `vpga_compact`
/// has a pre-existing debug_assert ("cluster removal left N cells") that
/// fires on some random DAGs with shared fanout inside a cluster; those
/// netlists are tested uncompacted — both engines always receive the
/// same netlist, which is all the equivalence property needs.
fn mapped(rng: &mut SmallRng, arch: &PlbArchitecture) -> Netlist {
    let lib = generic::library();
    let netlist = random_netlist(rng, &lib);
    let m = vpga_synth::map_netlist_fast(&netlist, &lib, arch).expect("mappable");
    let mut c = m.clone();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        vpga_compact::compact(&mut c, arch).map(|_| ())
    })) {
        Ok(Ok(())) => c,
        _ => m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random netlist + random (iterations, fill, criticality): the §3.1
    /// loop with the cross-pass leaf memo reproduces the from-scratch
    /// quadrisection bit-for-bit — every assignment, every position, and
    /// every counter except the reuse instrumentation itself.
    #[test]
    fn incremental_repack_matches_full(
        netlist_seed in 0u64..1_000_000,
        iterations in 1usize..4,
        fill_pick in 0usize..3,
        with_crit in any::<bool>(),
    ) {
        let arch = PlbArchitecture::granular();
        let mut rng = SmallRng::seed_from_u64(netlist_seed);
        let netlist = mapped(&mut rng, &arch);
        let criticality = with_crit.then(|| {
            (0..netlist.cell_capacity()).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>()
        });
        let cfg = PackConfig {
            iterations,
            target_fill: [0.75, 0.85, 0.95][fill_pick],
            criticality,
            ..PackConfig::default()
        };
        let pc = PlaceConfig::default();
        let p0 = vpga_place::place(&netlist, arch.library(), &pc);
        let mut p_inc = p0.clone();
        let mut p_full = p0;
        let inc = vpga_pack::pack_iterative_with_stats(&netlist, &arch, &mut p_inc, &pc, &cfg);
        let full = vpga_pack::pack_iterative_with_stats(
            &netlist,
            &arch,
            &mut p_full,
            &pc,
            &PackConfig { incremental: false, ..cfg },
        );
        match (inc, full) {
            (Err(ei), Err(ef)) => prop_assert_eq!(ei, ef),
            (Ok((a_inc, s_inc)), Ok((a_full, s_full))) => {
                let mut core = s_inc;
                core.regions_reused = 0;
                core.subtrees_repartitioned = 0;
                prop_assert_eq!(core, s_full);
                prop_assert_eq!(s_full.regions_reused, 0);
                prop_assert_eq!(s_full.subtrees_repartitioned, 0);
                for (id, cell) in netlist.cells() {
                    if cell.lib_id().is_none() {
                        continue;
                    }
                    prop_assert_eq!(a_inc.plb_of(id), a_full.plb_of(id), "cell {}", id);
                    prop_assert_eq!(a_inc.slot_class_of(id), a_full.slot_class_of(id));
                    prop_assert_eq!(
                        p_inc.position(id).map(|(x, y)| (x.to_bits(), y.to_bits())),
                        p_full.position(id).map(|(x, y)| (x.to_bits(), y.to_bits()))
                    );
                }
            }
            (inc, full) => prop_assert!(false, "engines diverged: {inc:?} vs {full:?}"),
        }
    }

    /// Random netlist + random swap seed: the delta-cost engine reproduces
    /// the recompute-over-the-placement oracle bit-for-bit — gain bits,
    /// assignments, positions, and the core stats.
    #[test]
    fn delta_swap_matches_oracle(
        netlist_seed in 0u64..1_000_000,
        swap_seed in 0u64..1_000_000,
        moves_per_plb in 1usize..8,
    ) {
        let arch = PlbArchitecture::granular();
        let mut rng = SmallRng::seed_from_u64(netlist_seed);
        let netlist = mapped(&mut rng, &arch);
        let pc = PlaceConfig::default();
        let mut placement = vpga_place::place(&netlist, arch.library(), &pc);
        let mut array = vpga_pack::pack(&netlist, &arch, &placement, &PackConfig::default())
            .expect("packable");
        vpga_pack::apply_to_placement(&array, &netlist, &mut placement);
        let cfg = SwapConfig {
            seed: swap_seed,
            moves_per_plb,
            ..SwapConfig::default()
        };
        let mut array_l = array.clone();
        let mut placement_l = placement.clone();
        let (gain_d, s_d) =
            vpga_pack::swap_optimize_with_stats(&mut array, &netlist, &mut placement, &cfg);
        let (gain_l, s_l) = vpga_pack::swap_optimize_with_stats(
            &mut array_l,
            &netlist,
            &mut placement_l,
            &SwapConfig { delta_cost: false, ..cfg },
        );
        prop_assert_eq!(gain_d.to_bits(), gain_l.to_bits());
        let mut core = s_d;
        core.delta_evals = 0;
        core.bbox_rescans = 0;
        prop_assert_eq!(core, s_l);
        for (id, cell) in netlist.cells() {
            if cell.lib_id().is_none() {
                continue;
            }
            prop_assert_eq!(array.plb_of(id), array_l.plb_of(id), "cell {}", id);
            prop_assert_eq!(
                placement.position(id).map(|(x, y)| (x.to_bits(), y.to_bits())),
                placement_l.position(id).map(|(x, y)| (x.to_bits(), y.to_bits()))
            );
        }
    }
}
