//! SDF 3.0 timing export: writer and parser for the subset the flow
//! emits.
//!
//! The emitted file is a standard `DELAYFILE`: a header (design, vendor,
//! program, version, divider, timescale), one top-scope `CELL` holding an
//! `INTERCONNECT` entry per (driver pin → sink pin) connection with the
//! net's lumped wire delay, and one `CELL` per library cell instance with
//! an `IOPATH` entry per input pin carrying the cell's load-dependent
//! delay. Delay values are written via Rust's shortest-round-trip `f64`
//! formatting and parsed back with `str::parse`, so a re-parsed value is
//! bit-identical to the [`vpga_timing::ArcDelays`] source — the
//! round-trip suites compare them with `to_bits`, not a tolerance.
//!
//! Pin naming follows the structural-Verilog writer: combinational
//! inputs are `i0/i1/i2` and the output `y`; the flip-flop uses `d` and
//! `q` (the model's clock→q launch delay is annotated on the `d`→`q`
//! arc, as the clock network is implicit). Top-level ports appear as
//! bare port names.

use std::fmt::Write as _;

use vpga_netlist::library::Library;
use vpga_netlist::CellKind;
use vpga_netlist::{CellId, Netlist};
use vpga_timing::ArcDelays;

use crate::InterchangeError;

/// One annotated delay arc: `from` → `to` pin paths and the delay value.
#[derive(Clone, Debug, PartialEq)]
pub struct SdfArc {
    /// Source pin path (`inst/pin` or a bare top-level port).
    pub from: String,
    /// Destination pin path.
    pub to: String,
    /// The delay, in the header's timescale units.
    pub delay: f64,
}

/// One `(CELL ...)` record.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SdfCell {
    /// The `CELLTYPE` string.
    pub celltype: String,
    /// The `INSTANCE` path; empty for the top scope.
    pub instance: String,
    /// `INTERCONNECT` entries (wire delays).
    pub interconnects: Vec<SdfArc>,
    /// `IOPATH` entries (cell delays).
    pub iopaths: Vec<SdfArc>,
}

/// A parsed (or to-be-written) SDF delay file.
#[derive(Clone, Debug, PartialEq)]
pub struct SdfFile {
    /// The `DESIGN` header string.
    pub design: String,
    /// The `VENDOR` header string.
    pub vendor: String,
    /// The `PROGRAM` header string.
    pub program: String,
    /// The `VERSION` header string (the flow stores `arch/variant`
    /// fabric metadata here).
    pub version: String,
    /// The `TIMESCALE` atom, e.g. `1ps`.
    pub timescale: String,
    /// The cell records, top scope first when present.
    pub cells: Vec<SdfCell>,
}

impl SdfFile {
    /// Builds the SDF annotation of `netlist` from the exact per-arc
    /// delays the STA used ([`vpga_timing::TimingGraph::arc_delays`]).
    /// `version` carries free-form fabric metadata (the flow passes
    /// `arch/variant`).
    pub fn from_timing(
        netlist: &Netlist,
        lib: &Library,
        arcs: &ArcDelays,
        version: &str,
    ) -> SdfFile {
        let is_seq = |id: CellId| -> bool {
            netlist
                .cell(id)
                .and_then(|c| c.lib_id())
                .and_then(|l| lib.cell(l))
                .is_some_and(|c| c.is_sequential())
        };
        let driver_path = |id: CellId| -> String {
            let cell = netlist.cell(id).expect("live driver");
            match cell.kind() {
                CellKind::Lib(_) => {
                    let pin = if is_seq(id) { "q" } else { "y" };
                    format!("{}/{pin}", netlist.cell_name(id))
                }
                _ => netlist.cell_name(id).to_owned(),
            }
        };
        let sink_path = |id: CellId, pin: usize| -> String {
            let cell = netlist.cell(id).expect("live sink");
            match cell.kind() {
                CellKind::Lib(_) => {
                    if is_seq(id) {
                        format!("{}/d", netlist.cell_name(id))
                    } else {
                        format!("{}/i{pin}", netlist.cell_name(id))
                    }
                }
                _ => netlist.cell_name(id).to_owned(),
            }
        };
        let mut top = SdfCell {
            celltype: netlist.name().to_owned(),
            instance: String::new(),
            ..SdfCell::default()
        };
        for net in netlist.nets() {
            let (Some(driver), Some(delay)) = (netlist.driver(net), arcs.net(net.index())) else {
                continue;
            };
            let from = driver_path(driver);
            for &(sink, pin) in netlist.sinks(net) {
                top.interconnects.push(SdfArc {
                    from: from.clone(),
                    to: sink_path(sink, pin),
                    delay,
                });
            }
        }
        let mut cells = vec![top];
        for (id, cell) in netlist.cells() {
            let (CellKind::Lib(lid), Some(delay)) = (cell.kind(), arcs.cell(id.index())) else {
                continue;
            };
            let celltype = lib.cell(lid).map_or("?", |c| c.name()).to_owned();
            let mut rec = SdfCell {
                celltype,
                instance: netlist.cell_name(id).to_owned(),
                ..SdfCell::default()
            };
            if is_seq(id) {
                rec.iopaths.push(SdfArc {
                    from: "d".to_owned(),
                    to: "q".to_owned(),
                    delay,
                });
            } else {
                for pin in 0..cell.inputs().len() {
                    rec.iopaths.push(SdfArc {
                        from: format!("i{pin}"),
                        to: "y".to_owned(),
                        delay,
                    });
                }
            }
            cells.push(rec);
        }
        SdfFile {
            design: netlist.name().to_owned(),
            vendor: "vpga".to_owned(),
            program: "vpga".to_owned(),
            version: version.to_owned(),
            timescale: "1ps".to_owned(),
            cells,
        }
    }

    /// Renders the file in the writer's canonical layout (the layout
    /// [`parse`] fixpoints on).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let q = quote;
        let _ = writeln!(out, "(DELAYFILE");
        let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
        let _ = writeln!(out, "  (DESIGN {})", q(&self.design));
        let _ = writeln!(out, "  (VENDOR {})", q(&self.vendor));
        let _ = writeln!(out, "  (PROGRAM {})", q(&self.program));
        let _ = writeln!(out, "  (VERSION {})", q(&self.version));
        let _ = writeln!(out, "  (DIVIDER /)");
        let _ = writeln!(out, "  (TIMESCALE {})", self.timescale);
        for cell in &self.cells {
            let _ = writeln!(out, "  (CELL");
            let _ = writeln!(out, "    (CELLTYPE {})", q(&cell.celltype));
            if cell.instance.is_empty() {
                let _ = writeln!(out, "    (INSTANCE)");
            } else {
                let _ = writeln!(out, "    (INSTANCE {})", cell.instance);
            }
            let _ = writeln!(out, "    (DELAY");
            let _ = writeln!(out, "      (ABSOLUTE");
            for arc in &cell.interconnects {
                let _ = writeln!(
                    out,
                    "        (INTERCONNECT {} {} ({}))",
                    arc.from, arc.to, arc.delay
                );
            }
            for arc in &cell.iopaths {
                let _ = writeln!(
                    out,
                    "        (IOPATH {} {} ({}))",
                    arc.from, arc.to, arc.delay
                );
            }
            let _ = writeln!(out, "      )");
            let _ = writeln!(out, "    )");
            let _ = writeln!(out, "  )");
        }
        let _ = writeln!(out, ")");
        out
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Atom(String),
    Str(String),
}

struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

fn err(line: usize, col: usize, msg: impl Into<String>) -> InterchangeError {
    InterchangeError::Parse {
        line,
        col,
        msg: msg.into(),
    }
}

fn lex(text: &str) -> Result<Vec<Token>, InterchangeError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        let bump = |c: char, line: &mut usize, col: &mut usize| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        match c {
            c if c.is_whitespace() => {
                chars.next();
                bump(c, &mut line, &mut col);
            }
            '(' => {
                chars.next();
                col += 1;
                toks.push(Token {
                    tok: Tok::LParen,
                    line: tline,
                    col: tcol,
                });
            }
            ')' => {
                chars.next();
                col += 1;
                toks.push(Token {
                    tok: Tok::RParen,
                    line: tline,
                    col: tcol,
                });
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err(err(tline, tcol, "unterminated string")),
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\\') => {
                            col += 1;
                            match chars.next() {
                                Some('"') => {
                                    s.push('"');
                                    col += 1;
                                }
                                Some('\\') => {
                                    s.push('\\');
                                    col += 1;
                                }
                                other => {
                                    return Err(err(
                                        line,
                                        col,
                                        format!("bad string escape {other:?}"),
                                    ))
                                }
                            }
                        }
                        Some(c) => {
                            bump(c, &mut line, &mut col);
                            s.push(c);
                        }
                    }
                }
                toks.push(Token {
                    tok: Tok::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' {
                        break;
                    }
                    chars.next();
                    col += 1;
                    s.push(c);
                }
                toks.push(Token {
                    tok: Tok::Atom(s),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    Ok(toks)
}

struct Cursor {
    toks: Vec<Token>,
    at: usize,
    end_line: usize,
}

impl Cursor {
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.at)
            .map_or((self.end_line, 1), |t| (t.line, t.col))
    }

    fn next(&mut self, what: &str) -> Result<Tok, InterchangeError> {
        let (line, col) = self.here();
        match self.toks.get(self.at) {
            Some(t) => {
                self.at += 1;
                Ok(t.tok.clone())
            }
            None => Err(err(
                line,
                col,
                format!("expected {what}, found end of file"),
            )),
        }
    }

    fn lparen(&mut self) -> Result<(), InterchangeError> {
        let (line, col) = self.here();
        match self.next("'('")? {
            Tok::LParen => Ok(()),
            t => Err(err(line, col, format!("expected '(', found {t:?}"))),
        }
    }

    fn rparen(&mut self) -> Result<(), InterchangeError> {
        let (line, col) = self.here();
        match self.next("')'")? {
            Tok::RParen => Ok(()),
            t => Err(err(line, col, format!("expected ')', found {t:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), InterchangeError> {
        let (line, col) = self.here();
        match self.next(kw)? {
            Tok::Atom(ref a) if a == kw => Ok(()),
            t => Err(err(line, col, format!("expected {kw}, found {t:?}"))),
        }
    }

    fn atom(&mut self, what: &str) -> Result<String, InterchangeError> {
        let (line, col) = self.here();
        match self.next(what)? {
            Tok::Atom(a) => Ok(a),
            t => Err(err(line, col, format!("expected {what}, found {t:?}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, InterchangeError> {
        let (line, col) = self.here();
        match self.next(what)? {
            Tok::Str(s) => Ok(s),
            t => Err(err(
                line,
                col,
                format!("expected quoted {what}, found {t:?}"),
            )),
        }
    }

    /// `(KW "value")`
    fn header_str(&mut self, kw: &str) -> Result<String, InterchangeError> {
        self.lparen()?;
        self.keyword(kw)?;
        let v = self.string(kw)?;
        self.rparen()?;
        Ok(v)
    }

    fn f64(&mut self, what: &str) -> Result<f64, InterchangeError> {
        let (line, col) = self.here();
        let a = self.atom(what)?;
        a.parse::<f64>()
            .map_err(|_| err(line, col, format!("bad {what} value {a:?}")))
    }
}

/// Parses the writer's SDF subset back into an [`SdfFile`].
///
/// # Errors
///
/// A positioned [`InterchangeError::Parse`] on any malformed input —
/// truncated, corrupted, or outside the emitted subset. Never panics.
pub fn parse(text: &str) -> Result<SdfFile, InterchangeError> {
    let toks = lex(text)?;
    let end_line = text.lines().count().max(1);
    let mut c = Cursor {
        toks,
        at: 0,
        end_line,
    };
    c.lparen()?;
    c.keyword("DELAYFILE")?;
    c.lparen()?;
    c.keyword("SDFVERSION")?;
    let (line, col) = c.here();
    let v = c.string("SDFVERSION")?;
    if v != "3.0" {
        return Err(err(line, col, format!("unsupported SDF version {v:?}")));
    }
    c.rparen()?;
    let design = c.header_str("DESIGN")?;
    let vendor = c.header_str("VENDOR")?;
    let program = c.header_str("PROGRAM")?;
    let version = c.header_str("VERSION")?;
    c.lparen()?;
    c.keyword("DIVIDER")?;
    let (line, col) = c.here();
    let div = c.atom("DIVIDER")?;
    if div != "/" {
        return Err(err(line, col, format!("unsupported divider {div:?}")));
    }
    c.rparen()?;
    c.lparen()?;
    c.keyword("TIMESCALE")?;
    let timescale = c.atom("TIMESCALE")?;
    c.rparen()?;
    let mut cells = Vec::new();
    loop {
        // Either another `(CELL ...)` or the closing paren of DELAYFILE.
        let (line, col) = c.here();
        match c.next("'(' or ')'")? {
            Tok::RParen => break,
            Tok::LParen => {}
            t => return Err(err(line, col, format!("expected '(' or ')', found {t:?}"))),
        }
        c.keyword("CELL")?;
        c.lparen()?;
        c.keyword("CELLTYPE")?;
        let celltype = c.string("CELLTYPE")?;
        c.rparen()?;
        c.lparen()?;
        c.keyword("INSTANCE")?;
        let (line, col) = c.here();
        let instance = match c.next("instance path or ')'")? {
            Tok::RParen => String::new(),
            Tok::Atom(a) => {
                c.rparen()?;
                a
            }
            t => {
                return Err(err(
                    line,
                    col,
                    format!("expected instance path or ')', found {t:?}"),
                ))
            }
        };
        c.lparen()?;
        c.keyword("DELAY")?;
        c.lparen()?;
        c.keyword("ABSOLUTE")?;
        let mut cell = SdfCell {
            celltype,
            instance,
            ..SdfCell::default()
        };
        loop {
            let (line, col) = c.here();
            match c.next("'(' or ')'")? {
                Tok::RParen => break,
                Tok::LParen => {}
                t => return Err(err(line, col, format!("expected '(' or ')', found {t:?}"))),
            }
            let (line, col) = c.here();
            let kind = c.atom("IOPATH or INTERCONNECT")?;
            let from = c.atom("source pin")?;
            let to = c.atom("destination pin")?;
            c.lparen()?;
            let delay = c.f64("delay")?;
            c.rparen()?;
            c.rparen()?;
            let arc = SdfArc { from, to, delay };
            match kind.as_str() {
                "IOPATH" => cell.iopaths.push(arc),
                "INTERCONNECT" => cell.interconnects.push(arc),
                other => {
                    return Err(err(
                        line,
                        col,
                        format!("expected IOPATH or INTERCONNECT, found {other:?}"),
                    ))
                }
            }
        }
        c.rparen()?; // DELAY
        c.rparen()?; // CELL
        cells.push(cell);
    }
    if let Some(t) = c.toks.get(c.at) {
        return Err(err(t.line, t.col, "trailing input after DELAYFILE"));
    }
    Ok(SdfFile {
        design,
        vendor,
        program,
        version,
        timescale,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdfFile {
        SdfFile {
            design: "t".to_owned(),
            vendor: "vpga".to_owned(),
            program: "vpga".to_owned(),
            version: "granular/a".to_owned(),
            timescale: "1ps".to_owned(),
            cells: vec![
                SdfCell {
                    celltype: "t".to_owned(),
                    instance: String::new(),
                    interconnects: vec![SdfArc {
                        from: "a".to_owned(),
                        to: "g/i0".to_owned(),
                        delay: 0.125,
                    }],
                    iopaths: Vec::new(),
                },
                SdfCell {
                    celltype: "NAND2".to_owned(),
                    instance: "g".to_owned(),
                    interconnects: Vec::new(),
                    iopaths: vec![SdfArc {
                        from: "i0".to_owned(),
                        to: "y".to_owned(),
                        delay: 17.25,
                    }],
                },
            ],
        }
    }

    #[test]
    fn write_parse_is_identity_and_fixpoint() {
        let f = sample();
        let text = f.to_text();
        let back = parse(&text).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn errors_are_positioned() {
        let text = sample().to_text();
        let truncated = &text[..text.len() / 2];
        match parse(truncated) {
            Err(InterchangeError::Parse { line, .. }) => assert!(line >= 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("(DELAYFILE").is_err());
        assert!(parse(&format!("{text})")).is_err());
    }
}
