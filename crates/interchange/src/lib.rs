//! Interchange formats for the VPGA flow's post-route artifacts.
//!
//! Two text codecs complement the binary [`vpga_netlist::wire`] snapshot
//! format, so external tools (and human reviewers) can consume the state
//! behind the paper's published numbers:
//!
//! * [`sdf`] — an SDF 3.0 writer and parser. The writer annotates every
//!   delay arc of the post-route netlist (per-cell `IOPATH`, per-net
//!   `INTERCONNECT`) with the exact `f64` values the STA folded into
//!   arrival times, via [`vpga_timing::ArcDelays`]; the parser reads the
//!   emitted subset back so the values can be checked bit-for-bit.
//! * [`vxdl`] — an XDL-style line-oriented netlist/placement/routing
//!   format (`.vxdl`). Unlike real XDL it is lossless down to the bit:
//!   the parser reconstructs [`vpga_netlist::Netlist`] and
//!   [`vpga_place::Placement`] snapshots identical to the originals
//!   (intern table, tombstones, id assignment, `f64` coordinates).
//!
//! Both parsers are total: any input — truncated, bit-flipped, or
//! adversarial — returns a positioned [`InterchangeError`], never a
//! panic. Round-trip fixpoints (`encode → parse → encode` is the
//! identity on emitted text) are locked down by the workspace's property
//! suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use vpga_netlist::wire::Writer;
use vpga_netlist::Netlist;
use vpga_place::Placement;

pub mod sdf;
pub mod vxdl;

/// Errors from the interchange parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterchangeError {
    /// The text failed to parse; `line`/`col` are 1-based and point at
    /// the first offending character.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// What was expected or found.
        msg: String,
    },
    /// The text parsed but does not describe a valid snapshot (for
    /// example a cell record referencing a name the table lacks).
    Invalid {
        /// The record section that failed to validate.
        section: &'static str,
        /// What was inconsistent.
        msg: String,
    },
}

impl InterchangeError {
    /// The byte offset of the error within `text`, when the error is
    /// positioned (start of the offending line plus the column).
    pub fn byte_offset(&self, text: &str) -> Option<usize> {
        match self {
            InterchangeError::Parse { line, col, .. } => {
                let mut offset = 0usize;
                for (i, l) in text.split('\n').enumerate() {
                    if i + 1 == *line {
                        return Some(offset + (col - 1).min(l.len()));
                    }
                    offset += l.len() + 1;
                }
                Some(offset.min(text.len()))
            }
            InterchangeError::Invalid { .. } => None,
        }
    }
}

impl fmt::Display for InterchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterchangeError::Parse { line, col, msg } => {
                write!(f, "parse error at line {line}, column {col}: {msg}")
            }
            InterchangeError::Invalid { section, msg } => {
                write!(f, "invalid {section}: {msg}")
            }
        }
    }
}

impl Error for InterchangeError {}

/// FNV-1a over `bytes` — the same hash the flow's checkpoint and matrix
/// fingerprints use, so interchange fingerprints compose with them.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fingerprint of a netlist + placement pair: FNV-1a over the
/// concatenated binary snapshots. Because the snapshots are bit-exact
/// (including `f64` bit patterns), two states fingerprint equal iff they
/// are byte-identical — the check the `.vxdl` migration path and the
/// round-trip property suites rely on.
pub fn snapshot_fingerprint(netlist: &Netlist, placement: &Placement) -> u64 {
    let mut w = Writer::new();
    netlist.encode_snapshot(&mut w);
    placement.encode_snapshot(&mut w);
    fnv1a(&w.into_bytes())
}
