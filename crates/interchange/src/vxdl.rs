//! The `.vxdl` codec: an XDL-style, line-oriented text serialization of
//! netlist + placement + routing.
//!
//! Like Xilinx XDL, the format is one record per line (`inst`, `net`,
//! `site`, `pip`, ...) and human-diffable; unlike XDL it is a *lossless*
//! complement to the binary [`vpga_netlist::wire`] snapshot codec: the
//! text carries the complete snapshot state — the name intern table in
//! order, dead slots (`gone` records), id assignments, the group
//! counter, constant-net bindings, and every `f64` via Rust's
//! shortest-round-trip formatting — so [`parse`] reconstructs
//! [`Netlist`] and [`Placement`] values whose re-encoded snapshots are
//! byte-identical to the originals, and `encode → parse → encode` is a
//! fixpoint on the emitted text.
//!
//! Internally both directions transcode the binary snapshot schema: the
//! writer walks [`Netlist::encode_snapshot`] bytes and prints records;
//! the parser prints records back into snapshot bytes and hands them to
//! [`Netlist::decode_snapshot`] / [`Placement::decode_snapshot`]. There
//! is exactly one schema, shared with the checkpoint store.
//!
//! Routing rides along as `route`/`pip` records (the router's tile-graph
//! segments, present when the flow retained routes); routes are carried
//! as plain data, not reconstructed into a router state, and are not part
//! of a snapshot fingerprint.

use std::fmt::Write as _;

use vpga_netlist::wire::{Reader, Writer};
use vpga_netlist::Netlist;
use vpga_place::Placement;

use crate::InterchangeError;

/// One routed tile-graph segment, `((x0, y0), (x1, y1))` — the same
/// shape as `vpga_route::RouteSegment`.
pub type Seg = ((usize, usize), (usize, usize));

/// A parsed `.vxdl` document.
#[derive(Debug)]
pub struct VxdlDoc {
    /// The reconstructed netlist (bit-identical snapshot).
    pub netlist: Netlist,
    /// The reconstructed placement (bit-identical snapshot).
    pub placement: Placement,
    /// Per-net routed segments, by net slot index, ascending.
    pub routes: Vec<(u32, Vec<Seg>)>,
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_owned(),
    }
}

/// Serializes `netlist` + `placement` (+ optional per-net `routes`,
/// ascending by net slot) as `.vxdl` text.
pub fn encode(netlist: &Netlist, placement: &Placement, routes: &[(u32, Vec<Seg>)]) -> String {
    let mut nw = Writer::new();
    netlist.encode_snapshot(&mut nw);
    let mut pw = Writer::new();
    placement.encode_snapshot(&mut pw);
    transcode(&nw.into_bytes(), &pw.into_bytes(), routes)
        .expect("encode_snapshot bytes are well-formed by construction")
}

/// Walks the two binary snapshots and prints the text records. `None`
/// only on malformed snapshot bytes (unreachable from [`encode`]).
fn transcode(nbytes: &[u8], pbytes: &[u8], routes: &[(u32, Vec<Seg>)]) -> Option<String> {
    let mut out = String::new();
    let o = &mut out;
    let mut r = Reader::new(nbytes);
    let _ = writeln!(o, "vxdl 1");
    let _ = writeln!(o, "design {}", escape(&r.str()?));
    let n_names = r.usize()?;
    let _ = writeln!(o, "names {n_names}");
    for _ in 0..n_names {
        let _ = writeln!(o, "name {}", escape(&r.str()?));
    }
    let n_cells = r.usize()?;
    let _ = writeln!(o, "cells {n_cells}");
    for slot in 0..n_cells {
        if !r.bool()? {
            let _ = writeln!(o, "gone {slot}");
            continue;
        }
        let name = r.u32()?;
        let kind = match r.u8()? {
            0 => "pi".to_owned(),
            1 => "po".to_owned(),
            2 => "c0".to_owned(),
            3 => "c1".to_owned(),
            4 => format!("lib{}", r.u32()?),
            _ => return None,
        };
        let n_pins = r.usize()?;
        let mut pins = String::new();
        for _ in 0..n_pins {
            let _ = write!(pins, " {}", r.u32()?);
        }
        let output = r.opt(Reader::u32)?.map(u64::from);
        let group = r.opt(Reader::u32)?.map(u64::from);
        let config = r.opt(Reader::u8)?.map(u64::from);
        let _ = writeln!(
            o,
            "inst {slot} n{name} {kind} pins {n_pins}{pins} out {} grp {} cfg {}",
            fmt_opt_u64(output),
            fmt_opt_u64(group),
            fmt_opt_u64(config),
        );
    }
    let n_nets = r.usize()?;
    let _ = writeln!(o, "nets {n_nets}");
    for slot in 0..n_nets {
        if !r.bool()? {
            let _ = writeln!(o, "gone {slot}");
            continue;
        }
        let name = r.u32()?;
        let driver = r.opt(Reader::u32)?.map(u64::from);
        let n_sinks = r.usize()?;
        let mut sinks = String::new();
        for _ in 0..n_sinks {
            let cell = r.u32()?;
            let pin = r.usize()?;
            let _ = write!(sinks, " {cell}:{pin}");
        }
        let _ = writeln!(
            o,
            "net {slot} n{name} drv {} sinks {n_sinks}{sinks}",
            fmt_opt_u64(driver)
        );
    }
    for kw in ["ports_in", "ports_out"] {
        let n = r.usize()?;
        let _ = write!(o, "{kw} {n}");
        for _ in 0..n {
            let _ = write!(o, " {}", r.u32()?);
        }
        let _ = writeln!(o);
    }
    let _ = writeln!(o, "nextgroup {}", r.u32()?);
    let c0 = r.opt(Reader::u32)?.map(u64::from);
    let c1 = r.opt(Reader::u32)?.map(u64::from);
    let _ = writeln!(o, "consts {} {}", fmt_opt_u64(c0), fmt_opt_u64(c1));
    if !r.done() {
        return None;
    }
    // Placement: the binary layout is columnar; the text is per-site.
    let mut r = Reader::new(pbytes);
    let n_sites = r.usize()?;
    let mut positions = Vec::with_capacity(n_sites.min(1 << 24));
    for _ in 0..n_sites {
        positions.push(r.opt(|r| Some((r.f64()?, r.f64()?)))?);
    }
    let mut fixed = Vec::with_capacity(n_sites.min(1 << 24));
    for _ in 0..n_sites {
        fixed.push(r.bool()?);
    }
    let mut regions = Vec::with_capacity(n_sites.min(1 << 24));
    for _ in 0..n_sites {
        regions.push(r.opt(|r| Some((r.f64()?, r.f64()?, r.f64()?, r.f64()?)))?);
    }
    let _ = writeln!(o, "sites {n_sites}");
    for slot in 0..n_sites {
        let _ = write!(o, "site {slot}");
        match positions[slot] {
            Some((x, y)) => {
                let _ = write!(o, " {x} {y}");
            }
            None => {
                let _ = write!(o, " -");
            }
        }
        let _ = write!(o, " {}", if fixed[slot] { "f" } else { "m" });
        match regions[slot] {
            Some((x0, y0, x1, y1)) => {
                let _ = writeln!(o, " {x0} {y0} {x1} {y1}");
            }
            None => {
                let _ = writeln!(o, " -");
            }
        }
    }
    let (dx0, dy0, dx1, dy1) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
    let pitch = r.f64()?;
    let _ = writeln!(o, "die {dx0} {dy0} {dx1} {dy1} pitch {pitch}");
    if !r.done() {
        return None;
    }
    let _ = writeln!(o, "routes {}", routes.len());
    for (net, segs) in routes {
        let _ = writeln!(o, "route {net} {}", segs.len());
        for &((x0, y0), (x1, y1)) in segs {
            let _ = writeln!(o, "pip {x0} {y0} {x1} {y1}");
        }
    }
    let _ = writeln!(o, "end");
    Some(out)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

fn err(line: usize, col: usize, msg: impl Into<String>) -> InterchangeError {
    InterchangeError::Parse {
        line,
        col,
        msg: msg.into(),
    }
}

#[derive(Debug)]
enum Tok<'a> {
    Word(&'a str),
    Quoted(String),
}

/// Lexes one line into `(column, token)` pairs. Quoted tokens may
/// contain spaces and the documented escapes.
fn lex_line(line_no: usize, line: &str) -> Result<Vec<(usize, Tok<'_>)>, InterchangeError> {
    let mut toks = Vec::new();
    let bytes = line.char_indices().collect::<Vec<_>>();
    let mut i = 0usize;
    while i < bytes.len() {
        let (off, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let col = off + 1;
        if c == '"' {
            let mut s = String::new();
            i += 1;
            loop {
                let Some(&(esc_off, c)) = bytes.get(i) else {
                    return Err(err(line_no, col, "unterminated string"));
                };
                i += 1;
                match c {
                    '"' => break,
                    '\\' => {
                        let Some(&(_, e)) = bytes.get(i) else {
                            return Err(err(line_no, esc_off + 1, "dangling escape"));
                        };
                        i += 1;
                        match e {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            'r' => s.push('\r'),
                            'u' => {
                                // \u{hex}
                                let Some(&(_, '{')) = bytes.get(i) else {
                                    return Err(err(line_no, esc_off + 1, "bad \\u escape"));
                                };
                                i += 1;
                                let mut hex = String::new();
                                loop {
                                    let Some(&(_, h)) = bytes.get(i) else {
                                        return Err(err(line_no, esc_off + 1, "bad \\u escape"));
                                    };
                                    i += 1;
                                    if h == '}' {
                                        break;
                                    }
                                    hex.push(h);
                                }
                                let v = u32::from_str_radix(&hex, 16)
                                    .ok()
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| err(line_no, esc_off + 1, "bad \\u escape"))?;
                                s.push(v);
                            }
                            other => {
                                return Err(err(
                                    line_no,
                                    esc_off + 1,
                                    format!("bad escape \\{other}"),
                                ))
                            }
                        }
                    }
                    c => s.push(c),
                }
            }
            toks.push((col, Tok::Quoted(s)));
        } else {
            let start = i;
            while i < bytes.len() && !bytes[i].1.is_whitespace() && bytes[i].1 != '"' {
                i += 1;
            }
            let end_off = bytes.get(i).map_or(line.len(), |&(o, _)| o);
            toks.push((col, Tok::Word(&line[off..end_off])));
            let _ = start;
        }
    }
    Ok(toks)
}

/// A cursor over one line's tokens.
struct Rec<'a> {
    line_no: usize,
    line_len: usize,
    toks: Vec<(usize, Tok<'a>)>,
    at: usize,
}

impl<'a> Rec<'a> {
    fn here(&self) -> (usize, usize) {
        let col = self
            .toks
            .get(self.at)
            .map_or(self.line_len + 1, |&(c, _)| c);
        (self.line_no, col)
    }

    fn word(&mut self, what: &str) -> Result<&'a str, InterchangeError> {
        let (line, col) = self.here();
        match self.toks.get(self.at) {
            Some(&(_, Tok::Word(w))) => {
                self.at += 1;
                Ok(w)
            }
            Some((_, Tok::Quoted(_))) => {
                Err(err(line, col, format!("expected {what}, found a string")))
            }
            None => Err(err(
                line,
                col,
                format!("expected {what}, found end of line"),
            )),
        }
    }

    fn quoted(&mut self, what: &str) -> Result<String, InterchangeError> {
        let (line, col) = self.here();
        match self.toks.get(self.at) {
            Some((_, Tok::Quoted(s))) => {
                let s = s.clone();
                self.at += 1;
                Ok(s)
            }
            Some(_) => Err(err(line, col, format!("expected quoted {what}"))),
            None => Err(err(
                line,
                col,
                format!("expected quoted {what}, found end of line"),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), InterchangeError> {
        let (line, col) = self.here();
        let w = self.word(kw)?;
        if w == kw {
            Ok(())
        } else {
            Err(err(line, col, format!("expected {kw:?}, found {w:?}")))
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, InterchangeError> {
        let (line, col) = self.here();
        let w = self.word(what)?;
        w.parse::<u64>()
            .map_err(|_| err(line, col, format!("bad {what} {w:?}")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, InterchangeError> {
        let (line, col) = self.here();
        let v = self.u64(what)?;
        u32::try_from(v).map_err(|_| err(line, col, format!("{what} {v} out of range")))
    }

    fn usize(&mut self, what: &str) -> Result<usize, InterchangeError> {
        let (line, col) = self.here();
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| err(line, col, format!("{what} {v} out of range")))
    }

    fn opt_u32(&mut self, what: &str) -> Result<Option<u32>, InterchangeError> {
        if matches!(self.toks.get(self.at), Some(&(_, Tok::Word("-")))) {
            self.at += 1;
            return Ok(None);
        }
        Ok(Some(self.u32(what)?))
    }

    fn f64(&mut self, what: &str) -> Result<f64, InterchangeError> {
        let (line, col) = self.here();
        let w = self.word(what)?;
        w.parse::<f64>()
            .map_err(|_| err(line, col, format!("bad {what} {w:?}")))
    }

    fn dash(&mut self) -> bool {
        if matches!(self.toks.get(self.at), Some(&(_, Tok::Word("-")))) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn finish(self) -> Result<(), InterchangeError> {
        let (line, col) = self.here();
        if self.at == self.toks.len() {
            Ok(())
        } else {
            Err(err(line, col, "trailing tokens on line"))
        }
    }
}

/// A cursor over the document's non-blank lines.
struct Doc<'a> {
    lines: Vec<(usize, &'a str)>,
    at: usize,
    last_line: usize,
}

impl<'a> Doc<'a> {
    fn new(text: &'a str) -> Doc<'a> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let last_line = text.lines().count().max(1);
        Doc {
            lines,
            at: 0,
            last_line,
        }
    }

    fn next(&mut self, what: &str) -> Result<Rec<'a>, InterchangeError> {
        match self.lines.get(self.at) {
            Some(&(line_no, line)) => {
                self.at += 1;
                Ok(Rec {
                    line_no,
                    line_len: line.len(),
                    toks: lex_line(line_no, line)?,
                    at: 0,
                })
            }
            None => Err(err(
                self.last_line,
                1,
                format!("expected {what}, found end of file"),
            )),
        }
    }

    /// Opens the next record, requiring keyword `kw` first.
    fn record(&mut self, kw: &str) -> Result<Rec<'a>, InterchangeError> {
        let mut rec = self.next(kw)?;
        rec.keyword(kw)?;
        Ok(rec)
    }
}

/// Parses `.vxdl` text, reconstructing the netlist and placement
/// snapshots bit-identically.
///
/// # Errors
///
/// A positioned [`InterchangeError::Parse`] on malformed text, or
/// [`InterchangeError::Invalid`] when the records are well-formed but do
/// not decode to a consistent snapshot (for example a name id past the
/// intern table). Never panics, whatever the input.
pub fn parse(text: &str) -> Result<VxdlDoc, InterchangeError> {
    let mut doc = Doc::new(text);
    let mut rec = doc.record("vxdl")?;
    let (vline, vcol) = rec.here();
    let version = rec.u64("format version")?;
    if version != 1 {
        return Err(err(vline, vcol, format!("unsupported version {version}")));
    }
    rec.finish()?;

    let mut w = Writer::new();
    let mut rec = doc.record("design")?;
    w.str(&rec.quoted("design name")?);
    rec.finish()?;

    let mut rec = doc.record("names")?;
    let n_names = rec.usize("name count")?;
    rec.finish()?;
    w.usize(n_names);
    for _ in 0..n_names {
        let mut rec = doc.record("name")?;
        w.str(&rec.quoted("name text")?);
        rec.finish()?;
    }

    let mut rec = doc.record("cells")?;
    let n_cells = rec.usize("cell count")?;
    rec.finish()?;
    w.usize(n_cells);
    for slot in 0..n_cells {
        let mut rec = doc.next("inst or gone record")?;
        let (line, col) = rec.here();
        let kw = rec.word("inst or gone")?;
        let (sline, scol) = rec.here();
        let got = rec.usize("slot")?;
        if got != slot {
            return Err(err(
                sline,
                scol,
                format!("expected slot {slot}, found {got}"),
            ));
        }
        match kw {
            "gone" => {
                w.bool(false);
                rec.finish()?;
                continue;
            }
            "inst" => w.bool(true),
            other => {
                return Err(err(
                    line,
                    col,
                    format!("expected inst or gone, found {other:?}"),
                ))
            }
        }
        let (nline, ncol) = rec.here();
        let name = rec.word("name id")?;
        let name: u32 = name
            .strip_prefix('n')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| err(nline, ncol, format!("bad name id {name:?}")))?;
        w.u32(name);
        let (kline, kcol) = rec.here();
        let kind = rec.word("cell kind")?;
        match kind {
            "pi" => w.u8(0),
            "po" => w.u8(1),
            "c0" => w.u8(2),
            "c1" => w.u8(3),
            k => match k.strip_prefix("lib").and_then(|d| d.parse::<u32>().ok()) {
                Some(lid) => {
                    w.u8(4);
                    w.u32(lid);
                }
                None => return Err(err(kline, kcol, format!("bad cell kind {k:?}"))),
            },
        }
        rec.keyword("pins")?;
        let n_pins = rec.usize("pin count")?;
        w.usize(n_pins);
        for _ in 0..n_pins {
            w.u32(rec.u32("pin net")?);
        }
        rec.keyword("out")?;
        match rec.opt_u32("output net")? {
            Some(n) => w.opt(Some(n), Writer::u32),
            None => w.opt(None::<u32>, Writer::u32),
        }
        rec.keyword("grp")?;
        match rec.opt_u32("group")? {
            Some(g) => w.opt(Some(g), Writer::u32),
            None => w.opt(None::<u32>, Writer::u32),
        }
        rec.keyword("cfg")?;
        let (cline, ccol) = rec.here();
        match rec.opt_u32("config")? {
            Some(c) => {
                let bits = u8::try_from(c)
                    .map_err(|_| err(cline, ccol, format!("config {c} not a byte")))?;
                w.opt(Some(bits), Writer::u8);
            }
            None => w.opt(None::<u8>, Writer::u8),
        }
        rec.finish()?;
    }

    let mut rec = doc.record("nets")?;
    let n_nets = rec.usize("net count")?;
    rec.finish()?;
    w.usize(n_nets);
    for slot in 0..n_nets {
        let mut rec = doc.next("net or gone record")?;
        let (line, col) = rec.here();
        let kw = rec.word("net or gone")?;
        let (sline, scol) = rec.here();
        let got = rec.usize("slot")?;
        if got != slot {
            return Err(err(
                sline,
                scol,
                format!("expected slot {slot}, found {got}"),
            ));
        }
        match kw {
            "gone" => {
                w.bool(false);
                rec.finish()?;
                continue;
            }
            "net" => w.bool(true),
            other => {
                return Err(err(
                    line,
                    col,
                    format!("expected net or gone, found {other:?}"),
                ))
            }
        }
        let (nline, ncol) = rec.here();
        let name = rec.word("name id")?;
        let name: u32 = name
            .strip_prefix('n')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| err(nline, ncol, format!("bad name id {name:?}")))?;
        w.u32(name);
        rec.keyword("drv")?;
        match rec.opt_u32("driver cell")? {
            Some(d) => w.opt(Some(d), Writer::u32),
            None => w.opt(None::<u32>, Writer::u32),
        }
        rec.keyword("sinks")?;
        let n_sinks = rec.usize("sink count")?;
        w.usize(n_sinks);
        for _ in 0..n_sinks {
            let (pline, pcol) = rec.here();
            let pair = rec.word("sink cell:pin")?;
            let (cell, pin) = pair
                .split_once(':')
                .and_then(|(c, p)| Some((c.parse::<u32>().ok()?, p.parse::<u64>().ok()?)))
                .ok_or_else(|| err(pline, pcol, format!("bad sink {pair:?}")))?;
            w.u32(cell);
            w.u64(pin);
        }
        rec.finish()?;
    }

    for kw in ["ports_in", "ports_out"] {
        let mut rec = doc.record(kw)?;
        let n = rec.usize("port count")?;
        w.usize(n);
        for _ in 0..n {
            w.u32(rec.u32("port cell")?);
        }
        rec.finish()?;
    }

    let mut rec = doc.record("nextgroup")?;
    w.u32(rec.u32("group counter")?);
    rec.finish()?;

    let mut rec = doc.record("consts")?;
    for _ in 0..2 {
        match rec.opt_u32("constant net")? {
            Some(n) => w.opt(Some(n), Writer::u32),
            None => w.opt(None::<u32>, Writer::u32),
        }
    }
    rec.finish()?;
    let netlist_bytes = w.into_bytes();

    // Placement records (per-site) transcode back to the columnar layout.
    let mut rec = doc.record("sites")?;
    let n_sites = rec.usize("site count")?;
    rec.finish()?;
    let mut positions: Vec<Option<(f64, f64)>> = Vec::new();
    let mut fixed: Vec<bool> = Vec::new();
    let mut regions: Vec<Option<(f64, f64, f64, f64)>> = Vec::new();
    for slot in 0..n_sites {
        let mut rec = doc.record("site")?;
        let (sline, scol) = rec.here();
        let got = rec.usize("slot")?;
        if got != slot {
            return Err(err(
                sline,
                scol,
                format!("expected site {slot}, found {got}"),
            ));
        }
        if rec.dash() {
            positions.push(None);
        } else {
            let x = rec.f64("x coordinate")?;
            let y = rec.f64("y coordinate")?;
            positions.push(Some((x, y)));
        }
        let (fline, fcol) = rec.here();
        match rec.word("f or m")? {
            "f" => fixed.push(true),
            "m" => fixed.push(false),
            other => {
                return Err(err(
                    fline,
                    fcol,
                    format!("expected f or m, found {other:?}"),
                ))
            }
        }
        if rec.dash() {
            regions.push(None);
        } else {
            let x0 = rec.f64("region x0")?;
            let y0 = rec.f64("region y0")?;
            let x1 = rec.f64("region x1")?;
            let y1 = rec.f64("region y1")?;
            regions.push(Some((x0, y0, x1, y1)));
        }
        rec.finish()?;
    }
    let mut w = Writer::new();
    w.usize(n_sites);
    for p in &positions {
        w.opt(*p, |w, (x, y)| {
            w.f64(x);
            w.f64(y);
        });
    }
    for &f in &fixed {
        w.bool(f);
    }
    for r in &regions {
        w.opt(*r, |w, (x0, y0, x1, y1)| {
            w.f64(x0);
            w.f64(y0);
            w.f64(x1);
            w.f64(y1);
        });
    }
    let mut rec = doc.record("die")?;
    for what in ["die x0", "die y0", "die x1", "die y1"] {
        w.f64(rec.f64(what)?);
    }
    rec.keyword("pitch")?;
    w.f64(rec.f64("site pitch")?);
    rec.finish()?;
    let placement_bytes = w.into_bytes();

    let mut rec = doc.record("routes")?;
    let n_routes = rec.usize("route count")?;
    rec.finish()?;
    let mut routes = Vec::new();
    let mut prev_net: Option<u32> = None;
    for _ in 0..n_routes {
        let mut rec = doc.record("route")?;
        let (nline, ncol) = rec.here();
        let net = rec.u32("net")?;
        if prev_net.is_some_and(|p| p >= net) {
            return Err(err(nline, ncol, "route records must ascend by net"));
        }
        prev_net = Some(net);
        let n_segs = rec.usize("segment count")?;
        rec.finish()?;
        let mut segs = Vec::new();
        for _ in 0..n_segs {
            let mut rec = doc.record("pip")?;
            let x0 = rec.usize("pip x0")?;
            let y0 = rec.usize("pip y0")?;
            let x1 = rec.usize("pip x1")?;
            let y1 = rec.usize("pip y1")?;
            rec.finish()?;
            segs.push(((x0, y0), (x1, y1)));
        }
        routes.push((net, segs));
    }

    let rec = doc.record("end")?;
    rec.finish()?;
    if let Some(&(line_no, _)) = doc.lines.get(doc.at) {
        return Err(err(line_no, 1, "trailing input after end record"));
    }

    let mut r = Reader::new(&netlist_bytes);
    let netlist = Netlist::decode_snapshot(&mut r)
        .filter(|_| r.done())
        .ok_or(InterchangeError::Invalid {
            section: "netlist",
            msg: "records do not form a consistent netlist snapshot".to_owned(),
        })?;
    let mut r = Reader::new(&placement_bytes);
    let placement = Placement::decode_snapshot(&mut r)
        .filter(|_| r.done())
        .ok_or(InterchangeError::Invalid {
            section: "placement",
            msg: "records do not form a consistent placement snapshot".to_owned(),
        })?;
    Ok(VxdlDoc {
        netlist,
        placement,
        routes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpga_netlist::library::generic;

    fn sample() -> (Netlist, Placement) {
        let lib = generic::library();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_lib_cell("g", &lib, "AND2", &[a, b]).unwrap();
        n.add_output("y", g);
        let p = Placement::initial(&n, &lib, 0.5);
        (n, p)
    }

    #[test]
    fn encode_parse_encode_is_a_fixpoint() {
        let (n, p) = sample();
        let routes = vec![(0u32, vec![((0, 0), (0, 1)), ((0, 1), (1, 1))])];
        let text = encode(&n, &p, &routes);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.routes, routes);
        let again = encode(&doc.netlist, &doc.placement, &doc.routes);
        assert_eq!(text, again);
        assert_eq!(
            crate::snapshot_fingerprint(&n, &p),
            crate::snapshot_fingerprint(&doc.netlist, &doc.placement)
        );
    }

    #[test]
    fn corrupt_inputs_are_positioned_errors() {
        let (n, p) = sample();
        let text = encode(&n, &p, &[]);
        assert!(parse("").is_err());
        assert!(parse("vxdl 2\n").is_err());
        let truncated = &text[..text.len() / 2];
        match parse(truncated) {
            Err(InterchangeError::Parse { line, .. }) => assert!(line >= 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse(&format!("{text}net 9 n0 drv - sinks 0\n")) {
            Err(InterchangeError::Parse { .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
