//! Slot-occupancy accounting for one PLB instance.
//!
//! The packer legalizes an ASIC-style placement by assigning component cells
//! to PLBs; each PLB tracks how many slots of each class are in use. The
//! paper's packing-efficiency flexibility (§3.2: "a 2-input Nand function on
//! a non-critical path can be mapped into a MUX without affecting
//! performance if the ND3WI gate in the PLB is already used up") is exposed
//! through [`PlbInstance::place_flexible`], which retargets a cell's
//! function onto any free slot whose via-configuration set can produce it.

use vpga_logic::Tt3;
use vpga_netlist::CellClass;

use crate::arch::{PlbArchitecture, SlotSet};
use crate::matcher;

/// Occupancy state of one PLB in the array.
///
/// # Example
///
/// ```
/// use vpga_core::{PlbArchitecture, PlbInstance};
/// use vpga_netlist::CellClass;
///
/// let arch = PlbArchitecture::granular();
/// let mut plb = PlbInstance::new(&arch);
/// assert!(plb.place(CellClass::Mux));
/// assert!(plb.place(CellClass::Mux));
/// assert!(!plb.place(CellClass::Mux)); // only two MUX slots
/// assert_eq!(plb.free(CellClass::Xoa), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlbInstance {
    capacity: SlotSet,
    used: SlotSet,
}

impl PlbInstance {
    /// An empty PLB of the given architecture.
    pub fn new(arch: &PlbArchitecture) -> PlbInstance {
        PlbInstance {
            capacity: arch.capacity().clone(),
            used: SlotSet::new(),
        }
    }

    /// Slots of `class` still free.
    pub fn free(&self, class: CellClass) -> u16 {
        self.capacity.count(class) - self.used.count(class)
    }

    /// Slots of `class` in use.
    pub fn used(&self, class: CellClass) -> u16 {
        self.used.count(class)
    }

    /// Total slots in use across classes.
    pub fn total_used(&self) -> u16 {
        self.used.total()
    }

    /// True if no slot is in use.
    pub fn is_empty(&self) -> bool {
        self.used.total() == 0
    }

    /// Occupies one slot of `class` if available; returns success.
    pub fn place(&mut self, class: CellClass) -> bool {
        if self.free(class) == 0 {
            return false;
        }
        self.used.add(class, 1);
        true
    }

    /// Releases one slot of `class`.
    ///
    /// # Panics
    ///
    /// Panics if no slot of `class` is in use.
    pub fn release(&mut self, class: CellClass) {
        assert!(self.used.count(class) > 0, "no {class} slot in use");
        self.used.remove(class, 1);
    }

    /// Occupies a slot for a cell of `class` computing `function`,
    /// preferring the native class but falling back to any free slot whose
    /// component cell can be via-programmed to `function` (the §3.2
    /// packing-flexibility rule). Returns the class of the slot actually
    /// used.
    pub fn place_flexible(
        &mut self,
        arch: &PlbArchitecture,
        class: CellClass,
        function: Option<Tt3>,
    ) -> Option<CellClass> {
        if self.place(class) {
            return Some(class);
        }
        // State-holding cells can never retarget: a DFF's "function" is the
        // identity, which combinational slots could host — incorrectly.
        if class.is_sequential() {
            return None;
        }
        let function = function?;
        for alt in CellClass::PLB_CLASSES {
            if alt == class || self.free(alt) == 0 || alt.is_sequential() {
                continue;
            }
            let Some(cell) = arch.slot_cell(alt) else {
                continue;
            };
            if cell.is_sequential() {
                continue;
            }
            if matcher::match_cell(cell, function, 3).is_some() {
                self.used.add(alt, 1);
                return Some(alt);
            }
        }
        None
    }

    /// True if a whole group with slot demand `demand` fits in the free
    /// space.
    pub fn fits(&self, demand: &SlotSet) -> bool {
        self.used.plus(demand).fits(&self.capacity)
    }

    /// Atomically seats a whole group of cells, using the flexible
    /// retargeting rule per member; on failure the PLB is unchanged.
    /// Returns the slot class each member landed in.
    pub fn place_group_flexible(
        &mut self,
        arch: &PlbArchitecture,
        members: &[(CellClass, Option<Tt3>)],
    ) -> Option<Vec<CellClass>> {
        let snapshot = self.used.clone();
        let mut landed = Vec::with_capacity(members.len());
        for &(class, function) in members {
            match self.place_flexible(arch, class, function) {
                Some(slot) => landed.push(slot),
                None => {
                    self.used = snapshot;
                    return None;
                }
            }
        }
        Some(landed)
    }

    /// Occupies every slot in `demand`; returns `false` (and leaves the PLB
    /// unchanged) if it does not fit.
    pub fn place_group(&mut self, demand: &SlotSet) -> bool {
        if !self.fits(demand) {
            return false;
        }
        self.used = self.used.plus(demand);
        true
    }

    /// Fraction of this PLB's slots in use.
    pub fn utilization(&self) -> f64 {
        if self.capacity.total() == 0 {
            return 0.0;
        }
        f64::from(self.used.total()) / f64::from(self.capacity.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpga_logic::{Tt3, Var};

    #[test]
    fn place_and_release_respect_capacity() {
        let arch = PlbArchitecture::lut_based();
        let mut plb = PlbInstance::new(&arch);
        assert!(plb.place(CellClass::Lut3));
        assert!(!plb.place(CellClass::Lut3));
        plb.release(CellClass::Lut3);
        assert!(plb.place(CellClass::Lut3));
        assert!(plb.place(CellClass::Nd3));
        assert!(plb.place(CellClass::Nd3));
        assert!(!plb.place(CellClass::Nd3));
        assert_eq!(plb.total_used(), 3);
    }

    #[test]
    #[should_panic(expected = "no")]
    fn releasing_unused_slot_panics() {
        let arch = PlbArchitecture::granular();
        let mut plb = PlbInstance::new(&arch);
        plb.release(CellClass::Mux);
    }

    #[test]
    fn flexible_placement_retargets_nand_onto_mux() {
        // The exact §3.2 example: the ND3WI slot is used up, so a 2-input
        // NAND lands in a MUX slot instead.
        let arch = PlbArchitecture::granular();
        let mut plb = PlbInstance::new(&arch);
        assert!(plb.place(CellClass::Nd3));
        let nand2 = !(Tt3::var(Var::A) & Tt3::var(Var::B));
        let slot = plb.place_flexible(&arch, CellClass::Nd3, Some(nand2));
        assert!(matches!(slot, Some(CellClass::Mux) | Some(CellClass::Xoa)));
    }

    #[test]
    fn flexible_placement_fails_for_unprogrammable_function() {
        // AND3 cannot be produced by a MUX slot, so with the ND3 gone and
        // only MUX/XOA slots left the placement must fail.
        let arch = PlbArchitecture::granular();
        let mut plb = PlbInstance::new(&arch);
        assert!(plb.place(CellClass::Nd3));
        let and3 = Tt3::AND3;
        assert!(!vpga_logic::cells::mux_set().contains(and3));
        assert_eq!(plb.place_flexible(&arch, CellClass::Nd3, Some(and3)), None);
    }

    #[test]
    fn group_placement_is_atomic() {
        let arch = PlbArchitecture::granular();
        let mut plb = PlbInstance::new(&arch);
        let mut demand = SlotSet::new();
        demand.add(CellClass::Mux, 2);
        demand.add(CellClass::Xoa, 1);
        demand.add(CellClass::Nd3, 1);
        assert!(plb.fits(&demand));
        assert!(plb.place_group(&demand));
        // A second full-adder-sized group cannot fit.
        assert!(!plb.place_group(&demand));
        assert_eq!(plb.used(CellClass::Mux), 2);
    }

    #[test]
    fn utilization_tracks_usage() {
        let arch = PlbArchitecture::granular();
        let mut plb = PlbInstance::new(&arch);
        assert_eq!(plb.utilization(), 0.0);
        assert!(plb.is_empty());
        plb.place(CellClass::Dff);
        assert!(plb.utilization() > 0.0);
        assert!(!plb.is_empty());
    }
}
