//! The two PLB architectures of the paper and their ablation family.

use std::fmt;

use vpga_logic::{FunctionSet256, Literal, Tt3, Var};
use vpga_netlist::{CellClass, LibCell, Library};

use crate::config::LogicConfig;
use crate::params::{self, CellParams};

/// A count of PLB slots per resource class.
///
/// Indexed by [`CellClass::PLB_CLASSES`] order (MUX, XOA, ND3, LUT3, BUF,
/// INV, DFF).
///
/// # Example
///
/// ```
/// use vpga_core::SlotSet;
/// use vpga_netlist::CellClass;
///
/// let mut demand = SlotSet::new();
/// demand.add(CellClass::Mux, 2);
/// demand.add(CellClass::Nd3, 1);
/// let capacity = vpga_core::PlbArchitecture::granular().capacity().clone();
/// assert!(demand.fits(&capacity));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SlotSet {
    counts: [u16; 7],
}

impl SlotSet {
    /// An empty slot set.
    pub fn new() -> SlotSet {
        SlotSet::default()
    }

    fn index(class: CellClass) -> usize {
        CellClass::PLB_CLASSES
            .iter()
            .position(|&c| c == class)
            .expect("class occupies PLB slots")
    }

    /// The count for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is [`CellClass::Generic`] (generic cells never
    /// occupy PLB slots).
    pub fn count(&self, class: CellClass) -> u16 {
        self.counts[Self::index(class)]
    }

    /// Adds `n` slots of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is [`CellClass::Generic`].
    pub fn add(&mut self, class: CellClass, n: u16) {
        self.counts[Self::index(class)] += n;
    }

    /// Removes `n` slots of `class`, saturating at zero.
    pub fn remove(&mut self, class: CellClass, n: u16) {
        let i = Self::index(class);
        self.counts[i] = self.counts[i].saturating_sub(n);
    }

    /// True if every per-class count of `self` is within `capacity`.
    pub fn fits(&self, capacity: &SlotSet) -> bool {
        self.counts
            .iter()
            .zip(&capacity.counts)
            .all(|(d, c)| d <= c)
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &SlotSet) -> SlotSet {
        let mut out = self.clone();
        for (o, v) in out.counts.iter_mut().zip(&other.counts) {
            *o += v;
        }
        out
    }

    /// Total slot count across all classes.
    pub fn total(&self) -> u16 {
        self.counts.iter().sum()
    }

    /// Iterates non-zero `(class, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (CellClass, u16)> + '_ {
        CellClass::PLB_CLASSES
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
            .filter(|&(_, n)| n > 0)
    }
}

impl fmt::Display for SlotSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (class, n) in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{n}×{class}")?;
            first = false;
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

/// One of the PLB architectures under study.
///
/// Construct with [`PlbArchitecture::granular`],
/// [`PlbArchitecture::lut_based`], or the ablation constructors.
#[derive(Clone, Debug)]
pub struct PlbArchitecture {
    name: String,
    capacity: SlotSet,
    library: Library,
    configs: Vec<LogicConfig>,
    comb_area: f64,
    seq_area: f64,
    via_sites: u32,
}

impl PlbArchitecture {
    /// The new granular PLB of Figure 4: two 2:1 MUXes, one XOA element, one
    /// ND3WI gate, a DFF, and dual-polarity programmable buffers.
    pub fn granular() -> PlbArchitecture {
        Self::granular_variant("granular", 2, 1, 1, 1)
    }

    /// The LUT-based PLB of Figure 1 (from the FPL 2003 paper): one 3-LUT,
    /// two ND3WI gates, a DFF, and buffers.
    pub fn lut_based() -> PlbArchitecture {
        let mut capacity = SlotSet::new();
        capacity.add(CellClass::Lut3, 1);
        capacity.add(CellClass::Nd3, 2);
        capacity.add(CellClass::Buf, 1);
        capacity.add(CellClass::Inv, 1);
        capacity.add(CellClass::Dff, 1);
        let library = build_library("plb_lut", LibraryKind::LutBased);
        let configs = LogicConfig::lut_based_configs();
        let comb_components =
            params::LUT3.area + 2.0 * params::ND3.area + params::BUF.area + params::INV.area;
        let sites = params::VIA_SITES;
        PlbArchitecture {
            name: "lut".to_owned(),
            capacity,
            library,
            configs,
            comb_area: comb_components + params::LUT_PLB_OVERHEAD,
            seq_area: params::DFF.area,
            via_sites: sites.lut3 + 2 * sites.nd3 + 2 * sites.buf + sites.dff,
        }
    }

    /// A *homogeneous* 3-LUT PLB — the conventional-FPGA baseline the
    /// paper's introduction positions heterogeneous PLBs against (\[7\]
    /// showed "LUT-mapped designs are dominated by simple logic functions
    /// ... which are not implemented efficiently by LUTs"): one 3-LUT, a
    /// DFF, and buffers, with no gate slots at all.
    pub fn homogeneous_lut() -> PlbArchitecture {
        let mut capacity = SlotSet::new();
        capacity.add(CellClass::Lut3, 1);
        capacity.add(CellClass::Buf, 1);
        capacity.add(CellClass::Inv, 1);
        capacity.add(CellClass::Dff, 1);
        let library = build_library("plb_homogeneous", LibraryKind::HomogeneousLut);
        let configs = vec![LogicConfig::lut_based_configs()
            .into_iter()
            .find(|c| c.name() == "LUT3")
            .expect("LUT3 config exists")];
        let comb_components = params::LUT3.area + params::BUF.area + params::INV.area;
        let sites = params::VIA_SITES;
        PlbArchitecture {
            name: "homogeneous".to_owned(),
            capacity,
            library,
            configs,
            comb_area: comb_components + params::LUT_PLB_OVERHEAD,
            seq_area: params::DFF.area,
            via_sites: sites.lut3 + 2 * sites.buf + sites.dff,
        }
    }

    /// An ablation variant of the granular architecture with the given slot
    /// counts (A1/A4 experiments). `granular()` is
    /// `granular_variant("granular", 2, 1, 1, 1)`.
    ///
    /// The local-interconnect overhead scales with the combinational
    /// component area at the granular PLB's overhead fraction, reflecting
    /// that more slots mean more potential via sites.
    ///
    /// # Panics
    ///
    /// Panics if the variant has no MUX-capable slot or no DFF.
    pub fn granular_variant(
        name: &str,
        muxes: u16,
        xoas: u16,
        nd3s: u16,
        dffs: u16,
    ) -> PlbArchitecture {
        assert!(
            muxes + xoas > 0,
            "granular variants need a MUX-capable slot"
        );
        assert!(dffs > 0, "granular variants need at least one DFF");
        let mut capacity = SlotSet::new();
        capacity.add(CellClass::Mux, muxes);
        capacity.add(CellClass::Xoa, xoas);
        capacity.add(CellClass::Nd3, nd3s);
        capacity.add(CellClass::Buf, 2);
        capacity.add(CellClass::Inv, 2);
        capacity.add(CellClass::Dff, dffs);
        let library = build_library("plb_granular", LibraryKind::Granular);
        let configs = LogicConfig::granular_configs();
        let comb_components = f64::from(muxes) * params::MUX.area
            + f64::from(xoas) * params::XOA.area
            + f64::from(nd3s) * params::ND3.area
            + 2.0 * params::BUF.area
            + 2.0 * params::INV.area;
        // Overhead fraction calibrated on the baseline granular PLB.
        let baseline_comb = 2.0 * params::MUX.area
            + params::XOA.area
            + params::ND3.area
            + 2.0 * params::BUF.area
            + 2.0 * params::INV.area;
        let overhead = comb_components * (params::GRANULAR_PLB_OVERHEAD / baseline_comb);
        let sites = params::VIA_SITES;
        PlbArchitecture {
            name: name.to_owned(),
            capacity,
            library,
            configs,
            comb_area: comb_components + overhead,
            seq_area: f64::from(dffs) * params::DFF.area,
            via_sites: u32::from(muxes) * sites.mux
                + u32::from(xoas) * sites.xoa
                + u32::from(nd3s) * sites.nd3
                + 4 * sites.buf
                + u32::from(dffs) * sites.dff,
        }
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Slot capacity of one PLB.
    pub fn capacity(&self) -> &SlotSet {
        &self.capacity
    }

    /// The characterized component-cell library for this architecture.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The logic configurations of §2.3 available for matching supernodes.
    pub fn configs(&self) -> &[LogicConfig] {
        &self.configs
    }

    /// Total PLB area (µm²), including local-interconnect overhead.
    pub fn area(&self) -> f64 {
        self.comb_area + self.seq_area
    }

    /// Combinational portion of the PLB area (µm²).
    pub fn comb_area(&self) -> f64 {
        self.comb_area
    }

    /// Sequential portion of the PLB area (µm²).
    pub fn seq_area(&self) -> f64 {
        self.seq_area
    }

    /// Potential configuration-via sites per PLB.
    pub fn via_sites(&self) -> u32 {
        self.via_sites
    }

    /// The representative library cell occupying slots of `class`, if this
    /// architecture has such slots.
    pub fn slot_cell(&self, class: CellClass) -> Option<&LibCell> {
        if self.capacity.count(class) == 0 {
            return None;
        }
        let name = match class {
            CellClass::Mux => "MUX",
            CellClass::Xoa => "XOA",
            CellClass::Nd3 => "ND3",
            CellClass::Lut3 => "LUT3",
            CellClass::Buf => "BUF",
            CellClass::Inv => "INV",
            CellClass::Dff => "DFF",
            CellClass::Generic => return None,
        };
        self.library.cell_by_name(name)
    }

    /// §2.2: can one PLB of this architecture implement a full adder (both
    /// the sum and carry functions)?
    ///
    /// Tries the paper's shared-propagate structure (three MUX-capable slots
    /// and the ND3WI gate for the generate term) and, failing that, two
    /// independent single-cell implementations.
    pub fn fits_full_adder(&self) -> bool {
        let (sum, carry) = vpga_logic::adder::mux_decomposition();
        debug_assert_eq!(sum, vpga_logic::adder::sum());
        debug_assert_eq!(carry, vpga_logic::adder::carry());
        // Structure from §2.2: P = a⊕b on a MUX-capable slot, sum = P⊕cin on
        // a second, cout = mux(P, G, cin) on a third, G = a·b on the ND3WI.
        let mux_capable = self.capacity.count(CellClass::Mux) + self.capacity.count(CellClass::Xoa);
        if mux_capable >= 3 && self.capacity.count(CellClass::Nd3) >= 1 {
            return true;
        }
        // Fallback: implement each output in its own single-cell config.
        let mut demand = SlotSet::new();
        for f in [vpga_logic::adder::sum(), vpga_logic::adder::carry()] {
            let Some(cfg) = self
                .configs
                .iter()
                .filter(|c| c.demand().total() == 1 && c.functions().contains(f))
                .min_by(|a, b| a.area().total_cmp(&b.area()))
            else {
                return false;
            };
            demand = demand.plus(cfg.demand());
        }
        demand.fits(&self.capacity)
    }
}

impl fmt::Display for PlbArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PLB {:?}: {} | area {:.1} µm² (comb {:.1}) | {} via sites",
            self.name,
            self.capacity,
            self.area(),
            self.comb_area,
            self.via_sites
        )
    }
}

// ----------------------------------------------------------------------
// Component libraries with via-configuration sets
// ----------------------------------------------------------------------

/// Functions a ND2WI gate selects among: `±(±x · ±y)` over pins (A, B).
pub fn nd2_config_set() -> FunctionSet256 {
    let mut set = FunctionSet256::new();
    for p in [Tt3::var(Var::A), !Tt3::var(Var::A)] {
        for q in [Tt3::var(Var::B), !Tt3::var(Var::B)] {
            set.insert(!(p & q));
            set.insert(p & q);
        }
    }
    set
}

/// Functions a ND3WI gate selects among: `±(±x · ±y · ±z)`.
pub fn nd3_config_set() -> FunctionSet256 {
    let mut set = FunctionSet256::new();
    for p in [Tt3::var(Var::A), !Tt3::var(Var::A)] {
        for q in [Tt3::var(Var::B), !Tt3::var(Var::B)] {
            for r in [Tt3::var(Var::C), !Tt3::var(Var::C)] {
                set.insert(!(p & q & r));
                set.insert(p & q & r);
            }
        }
    }
    set
}

/// Functions a 2:1 MUX selects among through the PLB's dual-polarity input
/// buffers: `mux(sel^s, d0^p, d1^q)` over pins (d0=A, d1=B, sel=C).
pub fn mux_config_set() -> FunctionSet256 {
    let mut set = FunctionSet256::new();
    for s in [Tt3::var(Var::C), !Tt3::var(Var::C)] {
        for p in [Tt3::var(Var::A), !Tt3::var(Var::A)] {
            for q in [Tt3::var(Var::B), !Tt3::var(Var::B)] {
                set.insert(Tt3::mux(s, p, q));
            }
        }
    }
    set
}

/// Functions the XOA element selects among: the MUX set plus its
/// programmable output inverter.
pub fn xoa_config_set() -> FunctionSet256 {
    let base = mux_config_set();
    let mut set = base;
    for t in base.iter() {
        set.insert(!t);
    }
    set
}

/// Which component mix a library carries.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LibraryKind {
    Granular,
    LutBased,
    HomogeneousLut,
}

fn build_library(name: &str, kind: LibraryKind) -> Library {
    let mut lib = Library::new(name);
    let add = |lib: &mut Library,
               name: &str,
               class: CellClass,
               arity: usize,
               default: Tt3,
               allowed: FunctionSet256,
               p: CellParams| {
        lib.add(LibCell::new_programmable(
            name,
            class,
            arity,
            default,
            allowed,
            p.area,
            p.input_cap,
            p.intrinsic_delay,
            p.drive_resistance,
        ))
        .expect("library names are unique");
    };
    if kind != LibraryKind::Granular {
        add(
            &mut lib,
            "LUT3",
            CellClass::Lut3,
            3,
            Tt3::NAND3,
            FunctionSet256::full(),
            params::LUT3,
        );
    }
    if kind == LibraryKind::Granular {
        add(
            &mut lib,
            "MUX",
            CellClass::Mux,
            3,
            Tt3::MUX,
            mux_config_set(),
            params::MUX,
        );
        add(
            &mut lib,
            "XOA",
            CellClass::Xoa,
            3,
            Tt3::MUX,
            xoa_config_set(),
            params::XOA,
        );
    }
    if kind != LibraryKind::HomogeneousLut {
        add(
            &mut lib,
            "ND3",
            CellClass::Nd3,
            3,
            Tt3::NAND3,
            nd3_config_set(),
            params::ND3,
        );
        add(
            &mut lib,
            "ND2",
            CellClass::Nd3,
            2,
            !(Tt3::var(Var::A) & Tt3::var(Var::B)),
            nd2_config_set(),
            params::ND2,
        );
    }
    {
        let mut buf_set = FunctionSet256::new();
        buf_set.insert(Literal::Pos(Var::A).tt());
        add(
            &mut lib,
            "BUF",
            CellClass::Buf,
            1,
            Literal::Pos(Var::A).tt(),
            buf_set,
            params::BUF,
        );
        let mut inv_set = FunctionSet256::new();
        inv_set.insert(Literal::Neg(Var::A).tt());
        add(
            &mut lib,
            "INV",
            CellClass::Inv,
            1,
            Literal::Neg(Var::A).tt(),
            inv_set,
            params::INV,
        );
    }
    lib.add(LibCell::new(
        "DFF",
        CellClass::Dff,
        1,
        Tt3::var(Var::A),
        params::DFF.area,
        params::DFF.input_cap,
        params::DFF.intrinsic_delay,
        params::DFF.drive_resistance,
    ))
    .expect("library names are unique");
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_ratios_match_the_paper() {
        let g = PlbArchitecture::granular();
        let l = PlbArchitecture::lut_based();
        assert!(
            (g.area() / l.area() - 1.20).abs() < 1e-3,
            "total ratio {}",
            g.area() / l.area()
        );
        assert!(
            (g.comb_area() / l.comb_area() - 1.266).abs() < 1e-3,
            "comb ratio {}",
            g.comb_area() / l.comb_area()
        );
    }

    #[test]
    fn granular_capacity_matches_figure_4() {
        let g = PlbArchitecture::granular();
        assert_eq!(g.capacity().count(CellClass::Mux), 2);
        assert_eq!(g.capacity().count(CellClass::Xoa), 1);
        assert_eq!(g.capacity().count(CellClass::Nd3), 1);
        assert_eq!(g.capacity().count(CellClass::Dff), 1);
        assert_eq!(g.capacity().count(CellClass::Lut3), 0);
    }

    #[test]
    fn lut_capacity_matches_figure_1() {
        let l = PlbArchitecture::lut_based();
        assert_eq!(l.capacity().count(CellClass::Lut3), 1);
        assert_eq!(l.capacity().count(CellClass::Nd3), 2);
        assert_eq!(l.capacity().count(CellClass::Dff), 1);
        assert_eq!(l.capacity().count(CellClass::Mux), 0);
    }

    #[test]
    fn full_adder_packs_only_in_granular() {
        assert!(PlbArchitecture::granular().fits_full_adder());
        assert!(!PlbArchitecture::lut_based().fits_full_adder());
    }

    #[test]
    fn granularity_raises_via_sites() {
        let g = PlbArchitecture::granular();
        let l = PlbArchitecture::lut_based();
        assert!(g.via_sites() > l.via_sites());
    }

    #[test]
    fn config_sets_have_expected_sizes() {
        assert_eq!(nd2_config_set().len(), 8);
        assert_eq!(nd3_config_set().len(), 16);
        assert_eq!(mux_config_set().len(), 8);
        // The XOA output inverter is functionally redundant at the cell
        // level: ¬mux(s, d0, d1) = mux(s, ¬d0, ¬d1), and pin polarities are
        // already in the set. It still matters electrically (it is how an
        // inverted copy of the XOA output reaches the other PLB pins).
        assert_eq!(xoa_config_set(), mux_config_set());
    }

    #[test]
    fn mux_config_set_contains_xor_via_polarity() {
        // xor(sel, d) with d bound to both data pins: mux(c, a, a') with the
        // d1-inverting configuration.
        let xor_ca = Tt3::var(Var::C) ^ Tt3::var(Var::A);
        let f = Tt3::mux(Tt3::var(Var::C), Tt3::var(Var::A), !Tt3::var(Var::B));
        assert!(mux_config_set().contains(f));
        // ...and after binding B:=A, the instance computes sel ⊕ d.
        let bound = Tt3::mux(Tt3::var(Var::C), Tt3::var(Var::A), !Tt3::var(Var::A));
        assert_eq!(bound, xor_ca);
    }

    #[test]
    fn slot_set_arithmetic() {
        let mut a = SlotSet::new();
        a.add(CellClass::Mux, 2);
        let mut b = SlotSet::new();
        b.add(CellClass::Mux, 1);
        b.add(CellClass::Nd3, 1);
        let sum = a.plus(&b);
        assert_eq!(sum.count(CellClass::Mux), 3);
        assert_eq!(sum.total(), 4);
        assert!(b.fits(&sum));
        assert!(!sum.fits(&b));
        a.remove(CellClass::Mux, 5);
        assert_eq!(a.count(CellClass::Mux), 0);
    }

    #[test]
    fn ablation_variants_scale_area() {
        let base = PlbArchitecture::granular();
        let wide = PlbArchitecture::granular_variant("g4", 3, 1, 1, 1);
        assert!(wide.area() > base.area());
        assert!(wide.capacity().count(CellClass::Mux) == 3);
        let ff2 = PlbArchitecture::granular_variant("gff2", 2, 1, 1, 2);
        assert!(ff2.seq_area() > base.seq_area());
        assert!(ff2.fits_full_adder());
    }

    #[test]
    fn libraries_resolve_expected_cells() {
        let g = PlbArchitecture::granular();
        for name in ["MUX", "XOA", "ND3", "ND2", "BUF", "INV", "DFF"] {
            assert!(
                g.library().cell_by_name(name).is_some(),
                "granular missing {name}"
            );
        }
        assert!(g.library().cell_by_name("LUT3").is_none());
        let l = PlbArchitecture::lut_based();
        for name in ["LUT3", "ND3", "ND2", "BUF", "INV", "DFF"] {
            assert!(
                l.library().cell_by_name(name).is_some(),
                "lut missing {name}"
            );
        }
        assert!(l.library().cell_by_name("MUX").is_none());
    }

    #[test]
    fn slot_cell_respects_capacity() {
        let g = PlbArchitecture::granular();
        assert!(g.slot_cell(CellClass::Mux).is_some());
        assert!(g.slot_cell(CellClass::Lut3).is_none());
    }
}
