//! Component-cell characterization — the CellRater substitute.
//!
//! The paper generates timing data for the restricted component library "by
//! characterizing these cells using a commercial tool called CellRater from
//! Silicon Metrics" (§3.1). We cannot run CellRater, so this module *is* the
//! characterization: a fixed table of per-cell area, input capacitance and
//! linear delay parameters in a 0.18 µm-class unit system, plus wire RC
//! constants for post-layout Elmore delays.
//!
//! # Calibration
//!
//! Absolute numbers are representative, not measured; what the experiments
//! consume are the *ratios* the paper states, which hold exactly:
//!
//! * granular PLB total area = **1.20×** LUT-based PLB total area ("the area
//!   of the proposed granular PLB being 20% larger", §3.2),
//! * granular PLB combinational area = **1.266×** the LUT-based PLB's
//!   ("26.6% more combinational logic area", §3.2),
//! * a 3-LUT configured as a simple logic function is substantially slower
//!   than the equivalent gate (≈3× a ND3WI), per the DAC 2003 companion
//!   paper's observation that the VPGA LUT "is substantially inferior to an
//!   equivalent standard cell in terms of delay, power and area" (§2).
//!
//! Unit system: area µm², capacitance fF, delay ps, resistance ps/fF.

/// Clock period of every experiment: "the cycle time for all the designs is
/// .5 ns" (§3.2).
pub const CLOCK_PERIOD_PS: f64 = 500.0;

/// Flip-flop setup time folded into register-bound timing checks.
pub const DFF_SETUP_PS: f64 = 55.0;

/// Wire capacitance per µm of routed length.
pub const WIRE_CAP_PER_UM: f64 = 0.2;

/// Wire resistance per µm, expressed as ps of delay per fF of downstream
/// capacitance.
pub const WIRE_RES_PER_UM: f64 = 0.002;

/// Estimated wire delay per logic stage used *during technology mapping*
/// (before placement, when actual net lengths are unknown). Every cell-to-
/// cell hop crosses PLB-level routing, which is why a single slower cell
/// (the 3-LUT) can still beat a two-level gate network.
pub const MAP_STAGE_WIRE_PS: f64 = 80.0;

/// Estimated routing area charged per cell instance during mapping-time
/// area comparisons (each extra instance adds nets to route).
pub const INSTANCE_WIRING_AREA: f64 = 25.0;

/// Electrical and physical parameters of one component cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellParams {
    /// Layout area, µm².
    pub area: f64,
    /// Input pin capacitance, fF.
    pub input_cap: f64,
    /// Intrinsic (unloaded) delay, ps.
    pub intrinsic_delay: f64,
    /// Output drive resistance, ps/fF.
    pub drive_resistance: f64,
}

/// ND3WI gate (also hosts 2-input gates by pin strapping).
pub const ND3: CellParams = CellParams {
    area: 95.0,
    input_cap: 1.8,
    intrinsic_delay: 45.0,
    drive_resistance: 6.0,
};

/// ND3WI slot used as a 2-input gate (ND2WI view): same layout, one pin
/// strapped, marginally faster.
pub const ND2: CellParams = CellParams {
    area: 95.0,
    input_cap: 1.8,
    intrinsic_delay: 40.0,
    drive_resistance: 6.0,
};

/// Plain 2:1 MUX component of the granular PLB.
pub const MUX: CellParams = CellParams {
    area: 150.0,
    input_cap: 2.0,
    intrinsic_delay: 60.0,
    drive_resistance: 7.0,
};

/// The XOA element: a 2:1 MUX "sized differently from the other two MUXes to
/// minimize logic delay" (§2.2), with a programmable output inverter.
pub const XOA: CellParams = CellParams {
    area: 180.0,
    input_cap: 2.2,
    intrinsic_delay: 50.0,
    drive_resistance: 6.0,
};

/// 3-input LUT of the LUT-based PLB. Deliberately slow when used as a simple
/// function — the inefficiency the granular PLB removes.
pub const LUT3: CellParams = CellParams {
    area: 330.0,
    input_cap: 2.6,
    intrinsic_delay: 150.0,
    drive_resistance: 9.0,
};

/// Programmable buffer / inserted repeater.
pub const BUF: CellParams = CellParams {
    area: 25.0,
    input_cap: 1.4,
    intrinsic_delay: 35.0,
    drive_resistance: 3.5,
};

/// Inverter.
pub const INV: CellParams = CellParams {
    area: 18.0,
    input_cap: 1.1,
    intrinsic_delay: 22.0,
    drive_resistance: 3.0,
};

/// D flip-flop (delay parameters describe the clk→Q arc).
pub const DFF: CellParams = CellParams {
    area: 190.0,
    input_cap: 1.6,
    intrinsic_delay: 110.0,
    drive_resistance: 6.0,
};

/// Local-interconnect and configuration-via overhead folded into the
/// LUT-based PLB's combinational area, µm².
pub const LUT_PLB_OVERHEAD: f64 = 12.7;

/// Local-interconnect and configuration-via overhead of the granular PLB —
/// larger because "greater configurability only results in an increase in
/// potential via sites" (§1), µm².
pub const GRANULAR_PLB_OVERHEAD: f64 = 67.84;

/// Potential configuration-via sites per slot class, used by the via-cost
/// reporting (granularity raises this count; that is the trade the paper
/// argues is cheap for via-patterned fabrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViaSites {
    /// Sites in a MUX slot.
    pub mux: u32,
    /// Sites in an XOA slot.
    pub xoa: u32,
    /// Sites in a ND3WI slot.
    pub nd3: u32,
    /// Sites in a 3-LUT slot.
    pub lut3: u32,
    /// Sites per buffer/inverter slot.
    pub buf: u32,
    /// Sites in the DFF slot.
    pub dff: u32,
}

/// The via-site census used by both architectures.
pub const VIA_SITES: ViaSites = ViaSites {
    mux: 22,
    xoa: 26,
    nd3: 18,
    lut3: 38,
    buf: 4,
    dff: 6,
};

#[cfg(test)]
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn lut_is_substantially_slower_than_gates() {
        assert!(LUT3.intrinsic_delay >= 3.0 * ND3.intrinsic_delay);
        assert!(LUT3.intrinsic_delay > MUX.intrinsic_delay + ND2.intrinsic_delay);
    }

    #[test]
    fn xoa_is_faster_than_plain_mux() {
        // "sized differently ... to minimize logic delay" (§2.2).
        assert!(XOA.intrinsic_delay < MUX.intrinsic_delay);
        assert!(XOA.area > MUX.area);
    }

    #[test]
    fn two_level_mux_configs_beat_the_lut() {
        // NDMX and XOAMX must be faster than LUT3 for the paper's timing
        // story to hold.
        let ndmx = ND2.intrinsic_delay + ND2.drive_resistance * MUX.input_cap + MUX.intrinsic_delay;
        let xoamx =
            XOA.intrinsic_delay + XOA.drive_resistance * MUX.input_cap + MUX.intrinsic_delay;
        assert!(ndmx < LUT3.intrinsic_delay + 10.0, "NDMX {ndmx} ps");
        assert!(xoamx < LUT3.intrinsic_delay + 10.0, "XOAMX {xoamx} ps");
    }

    #[test]
    fn all_params_positive() {
        #[allow(clippy::assertions_on_constants)]
        for p in [ND3, ND2, MUX, XOA, LUT3, BUF, INV, DFF] {
            assert!(p.area > 0.0);
            assert!(p.input_cap > 0.0);
            assert!(p.intrinsic_delay > 0.0);
            assert!(p.drive_resistance > 0.0);
        }
        let clock = CLOCK_PERIOD_PS;
        assert!((clock - 500.0).abs() < f64::EPSILON);
    }
}
