//! The logic configurations of §2.3 and their structural realization.
//!
//! A [`LogicConfig`] is one of the ways a PLB implements a ≤3-input
//! function: the granular PLB offers **MX**, **XOA**, **ND3**, **NDMX**,
//! **XOAMX**, and **XOANDMX**; the LUT-based PLB offers **ND3** and
//! **LUT3**. Each configuration knows the exact set of functions it covers,
//! the PLB slots it consumes, its area, and an unloaded delay estimate —
//! and can recover a concrete [`Realization`] (component cells, via
//! configurations, internal wiring) for any covered function, which is what
//! the logic-compaction pass instantiates.

use std::collections::HashMap;
use std::fmt;

use vpga_logic::{cells, FunctionSet256, Tt3};
use vpga_netlist::{CellClass, Library};

use crate::arch::SlotSet;
use crate::matcher::{self, compose, PinSource};
use crate::params;

/// Where a realized cell's pin is strapped: a leaf variable of the target
/// function, a rail, or the output of an earlier cell in the realization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeSource {
    /// Leaf variable `i` of the target function.
    Leaf(usize),
    /// A constant rail.
    Const(bool),
    /// Output of `cells[i]` of the same realization.
    Node(usize),
}

impl From<PinSource> for NodeSource {
    fn from(p: PinSource) -> NodeSource {
        match p {
            PinSource::Leaf(i) => NodeSource::Leaf(i),
            PinSource::Const(b) => NodeSource::Const(b),
        }
    }
}

/// One component cell of a realization: which library cell, its via
/// configuration, and its pin strapping.
#[derive(Clone, Debug, PartialEq)]
pub struct RealizedCell {
    /// Library cell name (e.g. `"MUX"`, `"ND3"`).
    pub lib_name: String,
    /// The via configuration of the instance.
    pub config: Tt3,
    /// Strapping of each pin, length = arity.
    pub pins: Vec<NodeSource>,
}

/// A concrete implementation of a target function as one to three wired
/// component cells. The last cell drives the output.
#[derive(Clone, Debug, PartialEq)]
pub struct Realization {
    /// The cells in topological order; `cells.last()` produces the output.
    pub cells: Vec<RealizedCell>,
}

impl Realization {
    /// Evaluates the realized structure as a truth table over the leaf
    /// variables — used to verify that a realization implements its target.
    pub fn output_function(&self) -> Tt3 {
        let mut node_tts: Vec<Tt3> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let pin_tts: Vec<Tt3> = cell
                .pins
                .iter()
                .map(|s| match *s {
                    NodeSource::Leaf(i) => {
                        Tt3::var(vpga_logic::Var::from_index(i).expect("leaf < 3"))
                    }
                    NodeSource::Const(false) => Tt3::FALSE,
                    NodeSource::Const(true) => Tt3::TRUE,
                    NodeSource::Node(n) => node_tts[n],
                })
                .collect();
            node_tts.push(compose(cell.config, &pin_tts));
        }
        *node_tts.last().expect("realization is non-empty")
    }
}

/// The internal structure of a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// One component cell.
    Single { cell: &'static str },
    /// `inner` feeds one pin of `outer`.
    Pair {
        inner: &'static str,
        outer: &'static str,
    },
    /// An inner MUX-capable cell and a gate both feed `outer`.
    Triple {
        mux: &'static str,
        gate: &'static str,
        outer: &'static str,
    },
}

/// One of the PLB logic configurations of §2.3.
#[derive(Clone, Debug)]
pub struct LogicConfig {
    name: &'static str,
    shape: Shape,
    demand: SlotSet,
    functions: FunctionSet256,
    area: f64,
    delay_ps: f64,
}

impl LogicConfig {
    /// The configuration's name as used in the paper (MX, ND3, NDMX, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// PLB slots this configuration consumes.
    pub fn demand(&self) -> &SlotSet {
        &self.demand
    }

    /// The exact set of 3-input functions the configuration implements.
    pub fn functions(&self) -> &FunctionSet256 {
        &self.functions
    }

    /// Component area of the configuration (µm²).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Unloaded critical-path delay estimate (ps).
    pub fn delay_ps(&self) -> f64 {
        self.delay_ps
    }

    /// Number of component cells in the configuration.
    pub fn num_cells(&self) -> usize {
        match self.shape {
            Shape::Single { .. } => 1,
            Shape::Pair { .. } => 2,
            Shape::Triple { .. } => 3,
        }
    }

    /// The configurations of the granular PLB (Figure 4), cheapest first.
    pub fn granular_configs() -> Vec<LogicConfig> {
        let mux_area = params::MUX.area;
        let xoa_area = params::XOA.area;
        let nd_area = params::ND3.area;
        let chain = |a: params::CellParams, b: params::CellParams| {
            a.intrinsic_delay + a.drive_resistance * b.input_cap + b.intrinsic_delay
        };
        vec![
            LogicConfig {
                name: "MX",
                shape: Shape::Single { cell: "MUX" },
                demand: demand(&[(CellClass::Mux, 1)]),
                functions: *cells::mux_set(),
                area: mux_area,
                delay_ps: params::MUX.intrinsic_delay,
            },
            LogicConfig {
                name: "ND3",
                shape: Shape::Single { cell: "ND3" },
                demand: demand(&[(CellClass::Nd3, 1)]),
                functions: *cells::nd3wi_set(),
                area: nd_area,
                delay_ps: params::ND3.intrinsic_delay,
            },
            LogicConfig {
                name: "XOA",
                shape: Shape::Single { cell: "XOA" },
                demand: demand(&[(CellClass::Xoa, 1)]),
                functions: *cells::mux_set(),
                area: xoa_area,
                delay_ps: params::XOA.intrinsic_delay,
            },
            LogicConfig {
                name: "NDMX",
                shape: Shape::Pair {
                    inner: "ND2",
                    outer: "MUX",
                },
                demand: demand(&[(CellClass::Nd3, 1), (CellClass::Mux, 1)]),
                functions: *cells::ndmx_set(),
                area: nd_area + mux_area,
                delay_ps: chain(params::ND2, params::MUX),
            },
            LogicConfig {
                name: "XOAMX",
                shape: Shape::Pair {
                    inner: "XOA",
                    outer: "MUX",
                },
                demand: demand(&[(CellClass::Xoa, 1), (CellClass::Mux, 1)]),
                functions: *cells::xoamx_set(),
                area: xoa_area + mux_area,
                delay_ps: chain(params::XOA, params::MUX),
            },
            LogicConfig {
                name: "XOANDMX",
                shape: Shape::Triple {
                    mux: "XOA",
                    gate: "ND3",
                    outer: "MUX",
                },
                demand: demand(&[
                    (CellClass::Xoa, 1),
                    (CellClass::Nd3, 1),
                    (CellClass::Mux, 1),
                ]),
                functions: *cells::xoandmx_set(),
                area: xoa_area + nd_area + mux_area,
                delay_ps: chain(params::XOA, params::MUX).max(chain(params::ND3, params::MUX)),
            },
        ]
    }

    /// The configurations of the LUT-based PLB (Figure 1).
    pub fn lut_based_configs() -> Vec<LogicConfig> {
        vec![
            LogicConfig {
                name: "ND3",
                shape: Shape::Single { cell: "ND3" },
                demand: demand(&[(CellClass::Nd3, 1)]),
                functions: *cells::nd3wi_set(),
                area: params::ND3.area,
                delay_ps: params::ND3.intrinsic_delay,
            },
            LogicConfig {
                name: "LUT3",
                shape: Shape::Single { cell: "LUT3" },
                demand: demand(&[(CellClass::Lut3, 1)]),
                functions: cells::lut3_set(),
                area: params::LUT3.area,
                delay_ps: params::LUT3.intrinsic_delay,
            },
        ]
    }

    /// Recovers a concrete realization of `target` in this configuration,
    /// or `None` if `target` is outside [`LogicConfig::functions`].
    ///
    /// The returned structure is verified to compute `target` (a
    /// `debug_assert` re-evaluates it).
    pub fn realize(&self, target: Tt3, lib: &Library) -> Option<Realization> {
        if !self.functions.contains(target) {
            return None;
        }
        let r = match self.shape {
            Shape::Single { cell } => realize_single(cell, target, lib),
            Shape::Pair { inner, outer } => realize_pair(inner, outer, target, lib),
            Shape::Triple { mux, gate, outer } => realize_triple(mux, gate, outer, target, lib),
        };
        if let Some(ref r) = r {
            debug_assert_eq!(r.output_function(), target, "config {}", self.name);
        }
        r
    }
}

impl fmt::Display for LogicConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} functions, area {:.0} µm², ~{:.0} ps, uses {}",
            self.name,
            self.functions.len(),
            self.area,
            self.delay_ps,
            self.demand
        )
    }
}

fn demand(entries: &[(CellClass, u16)]) -> SlotSet {
    let mut s = SlotSet::new();
    for &(class, n) in entries {
        s.add(class, n);
    }
    s
}

fn realize_single(cell_name: &str, target: Tt3, lib: &Library) -> Option<Realization> {
    let cell = lib.cell_by_name(cell_name)?;
    let m = matcher::match_cell(cell, target, 3)?;
    Some(Realization {
        cells: vec![RealizedCell {
            lib_name: cell_name.to_owned(),
            config: m.config,
            pins: m.pins.into_iter().map(NodeSource::from).collect(),
        }],
    })
}

/// All distinct functions an inner cell can produce over the three leaves,
/// each with one producing instance.
fn inner_candidates(cell_name: &str, lib: &Library) -> Vec<(Tt3, RealizedCell)> {
    let cell = lib.cell_by_name(cell_name).expect("known component cell");
    let sources: Vec<PinSource> = (0..3)
        .map(PinSource::Leaf)
        .chain([PinSource::Const(false), PinSource::Const(true)])
        .collect();
    let arity = cell.arity();
    let mut seen: HashMap<Tt3, RealizedCell> = HashMap::new();
    let mut binding = vec![PinSource::Const(false); arity];
    enumerate_bindings(&sources, arity, &mut binding, 0, &mut |binding| {
        let pin_tts: Vec<Tt3> = binding.iter().map(|p| p.tt()).collect();
        for config in cell.allowed().iter() {
            let tt = compose(config, &pin_tts);
            seen.entry(tt).or_insert_with(|| RealizedCell {
                lib_name: cell_name.to_owned(),
                config,
                pins: binding.iter().copied().map(NodeSource::from).collect(),
            });
        }
    });
    let mut out: Vec<(Tt3, RealizedCell)> = seen.into_iter().collect();
    out.sort_by_key(|(t, _)| t.bits());
    out
}

fn enumerate_bindings(
    sources: &[PinSource],
    arity: usize,
    binding: &mut Vec<PinSource>,
    pin: usize,
    visit: &mut impl FnMut(&[PinSource]),
) {
    if pin == arity {
        visit(binding);
        return;
    }
    for &s in sources {
        binding[pin] = s;
        enumerate_bindings(sources, arity, binding, pin + 1, visit);
    }
}

fn realize_pair(
    inner_name: &str,
    outer_name: &str,
    target: Tt3,
    lib: &Library,
) -> Option<Realization> {
    let outer = lib.cell_by_name(outer_name)?;
    let leaf_tts: Vec<(NodeSource, Tt3)> = base_sources();
    for (inner_tt, inner_cell) in inner_candidates(inner_name, lib) {
        let mut sources = leaf_tts.clone();
        sources.push((NodeSource::Node(0), inner_tt));
        if let Some(outer_cell) = solve_outer(outer, outer_name, target, &sources) {
            return Some(Realization {
                cells: vec![inner_cell, outer_cell],
            });
        }
    }
    None
}

fn realize_triple(
    mux_name: &str,
    gate_name: &str,
    outer_name: &str,
    target: Tt3,
    lib: &Library,
) -> Option<Realization> {
    let outer = lib.cell_by_name(outer_name)?;
    let gates = inner_candidates(gate_name, lib);
    for (mux_tt, mux_cell) in inner_candidates(mux_name, lib) {
        // Known sources: leaves, rails, the inner MUX output (Node(0)).
        let mut known = base_sources();
        known.push((NodeSource::Node(0), mux_tt));
        // One outer pin carries the unknown gate output (Node(1)). Solve for
        // the gate function it would need, then look it up.
        for unknown_pin in 0..outer.arity() {
            if let Some((config, pins, gate_cell)) =
                solve_unknown_full(outer, target, &known, unknown_pin, &gates)
            {
                return Some(Realization {
                    cells: vec![
                        mux_cell,
                        gate_cell,
                        RealizedCell {
                            lib_name: outer_name.to_owned(),
                            config,
                            pins,
                        },
                    ],
                });
            }
        }
    }
    None
}

fn base_sources() -> Vec<(NodeSource, Tt3)> {
    let mut v: Vec<(NodeSource, Tt3)> = (0..3)
        .map(|i| (NodeSource::Leaf(i), PinSource::Leaf(i).tt()))
        .collect();
    v.push((NodeSource::Const(false), Tt3::FALSE));
    v.push((NodeSource::Const(true), Tt3::TRUE));
    v
}

/// Finds an outer-cell binding over `sources` computing `target`.
fn solve_outer(
    outer: &vpga_netlist::LibCell,
    outer_name: &str,
    target: Tt3,
    sources: &[(NodeSource, Tt3)],
) -> Option<RealizedCell> {
    let arity = outer.arity();
    let mut pins = vec![NodeSource::Const(false); arity];
    let mut tts = vec![Tt3::FALSE; arity];
    solve_outer_rec(outer, outer_name, target, sources, &mut pins, &mut tts, 0)
}

#[allow(clippy::too_many_arguments)]
fn solve_outer_rec(
    outer: &vpga_netlist::LibCell,
    outer_name: &str,
    target: Tt3,
    sources: &[(NodeSource, Tt3)],
    pins: &mut Vec<NodeSource>,
    tts: &mut Vec<Tt3>,
    pin: usize,
) -> Option<RealizedCell> {
    if pin == outer.arity() {
        for config in outer.allowed().iter() {
            if compose(config, tts) == target {
                return Some(RealizedCell {
                    lib_name: outer_name.to_owned(),
                    config,
                    pins: pins.clone(),
                });
            }
        }
        return None;
    }
    for &(src, tt) in sources {
        pins[pin] = src;
        tts[pin] = tt;
        if let Some(c) = solve_outer_rec(outer, outer_name, target, sources, pins, tts, pin + 1) {
            return Some(c);
        }
    }
    None
}

/// Solves for an outer binding where `unknown_pin` carries an
/// as-yet-unknown signal: derives the required function (with don't-cares)
/// for that pin and searches `gates` for a producer. Returns the outer
/// configuration, pin strapping (with `Node(1)` at the unknown pin), and the
/// chosen gate instance.
fn solve_unknown_full(
    outer: &vpga_netlist::LibCell,
    target: Tt3,
    known: &[(NodeSource, Tt3)],
    unknown_pin: usize,
    gates: &[(Tt3, RealizedCell)],
) -> Option<(Tt3, Vec<NodeSource>, RealizedCell)> {
    let arity = outer.arity();
    let mut pins = vec![NodeSource::Const(false); arity];
    let mut tts = vec![Tt3::FALSE; arity];
    solve_unknown_rec(
        outer,
        target,
        known,
        unknown_pin,
        gates,
        &mut pins,
        &mut tts,
        0,
    )
}

#[allow(clippy::too_many_arguments)]
fn solve_unknown_rec(
    outer: &vpga_netlist::LibCell,
    target: Tt3,
    known: &[(NodeSource, Tt3)],
    unknown_pin: usize,
    gates: &[(Tt3, RealizedCell)],
    pins: &mut Vec<NodeSource>,
    tts: &mut Vec<Tt3>,
    pin: usize,
) -> Option<(Tt3, Vec<NodeSource>, RealizedCell)> {
    if pin == outer.arity() {
        'config: for config in outer.allowed().iter() {
            // Derive the required unknown-pin values with don't-cares.
            let mut care = 0u8;
            let mut req = 0u8;
            for m in 0..8u8 {
                let mut idx0 = 0u8;
                for (p, tt) in tts.iter().enumerate() {
                    if p != unknown_pin {
                        idx0 |= ((tt.bits() >> m) & 1) << p;
                    }
                }
                let idx1 = idx0 | (1 << unknown_pin);
                let out0 = (config.bits() >> idx0) & 1;
                let out1 = (config.bits() >> idx1) & 1;
                let want = (target.bits() >> m) & 1;
                if out0 == out1 {
                    if out0 != want {
                        continue 'config;
                    }
                } else {
                    care |= 1 << m;
                    if out1 == want {
                        req |= 1 << m;
                    }
                }
            }
            for (g_tt, g_cell) in gates {
                if g_tt.bits() & care == req & care {
                    let mut out_pins = pins.clone();
                    out_pins[unknown_pin] = NodeSource::Node(1);
                    return Some((config, out_pins, g_cell.clone()));
                }
            }
        }
        return None;
    }
    if pin == unknown_pin {
        pins[pin] = NodeSource::Node(1);
        tts[pin] = Tt3::FALSE; // placeholder, ignored by the solver
        return solve_unknown_rec(outer, target, known, unknown_pin, gates, pins, tts, pin + 1);
    }
    for &(src, tt) in known {
        pins[pin] = src;
        tts[pin] = tt;
        if let Some(r) =
            solve_unknown_rec(outer, target, known, unknown_pin, gates, pins, tts, pin + 1)
        {
            return Some(r);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PlbArchitecture;

    #[test]
    fn granular_configs_cover_everything_via_xoandmx() {
        let configs = LogicConfig::granular_configs();
        let xoandmx = configs.iter().find(|c| c.name() == "XOANDMX").unwrap();
        assert_eq!(xoandmx.functions().len(), 256);
    }

    #[test]
    fn config_sets_are_nested_as_expected() {
        let configs = LogicConfig::granular_configs();
        let get = |n: &str| {
            configs
                .iter()
                .find(|c| c.name() == n)
                .unwrap()
                .functions()
                .len()
        };
        assert!(get("MX") < get("NDMX"));
        assert!(get("NDMX") < get("XOANDMX"));
        assert!(get("XOAMX") <= get("XOANDMX"));
    }

    #[test]
    fn single_realizations_verify() {
        let arch = PlbArchitecture::granular();
        let configs = LogicConfig::granular_configs();
        let mx = configs.iter().find(|c| c.name() == "MX").unwrap();
        for t in mx.functions().iter() {
            let r = mx.realize(t, arch.library()).expect("covered function");
            assert_eq!(r.output_function(), t);
            assert_eq!(r.cells.len(), 1);
        }
    }

    #[test]
    fn ndmx_realizations_verify_over_full_set() {
        let arch = PlbArchitecture::granular();
        let configs = LogicConfig::granular_configs();
        let ndmx = configs.iter().find(|c| c.name() == "NDMX").unwrap();
        let mut checked = 0;
        for t in ndmx.functions().iter() {
            let r = ndmx.realize(t, arch.library()).expect("covered function");
            assert_eq!(r.output_function(), t, "target {t}");
            assert!(r.cells.len() <= 2);
            checked += 1;
        }
        // The NDMX set has 198 members (computed by `vpga-logic`).
        assert_eq!(checked, 198);
    }

    #[test]
    fn xoandmx_realizes_the_hard_functions() {
        let arch = PlbArchitecture::granular();
        let configs = LogicConfig::granular_configs();
        let xoandmx = configs.iter().find(|c| c.name() == "XOANDMX").unwrap();
        let ndmx = configs.iter().find(|c| c.name() == "NDMX").unwrap();
        let xoamx = configs.iter().find(|c| c.name() == "XOAMX").unwrap();
        // Check every function that *needs* the triple (and a sample of the rest).
        for t in Tt3::all() {
            let needs_triple = !ndmx.functions().contains(t) && !xoamx.functions().contains(t);
            if needs_triple || t.bits() % 37 == 0 {
                let r = xoandmx.realize(t, arch.library()).expect("complete config");
                assert_eq!(r.output_function(), t, "target {t}");
            }
        }
    }

    #[test]
    fn realize_refuses_uncovered_functions() {
        let arch = PlbArchitecture::granular();
        let configs = LogicConfig::granular_configs();
        let mx = configs.iter().find(|c| c.name() == "MX").unwrap();
        assert!(mx.realize(Tt3::MAJ3, arch.library()).is_none());
    }

    #[test]
    fn lut_configs_realize() {
        let arch = PlbArchitecture::lut_based();
        let configs = LogicConfig::lut_based_configs();
        let lut = configs.iter().find(|c| c.name() == "LUT3").unwrap();
        let r = lut.realize(Tt3::XOR3, arch.library()).unwrap();
        assert_eq!(r.output_function(), Tt3::XOR3);
        assert_eq!(r.cells[0].lib_name, "LUT3");
    }

    #[test]
    fn cheaper_configs_come_first() {
        let configs = LogicConfig::granular_configs();
        // MX is the cheapest way to implement a covered function.
        assert_eq!(configs[0].name(), "MX");
        let areas: Vec<f64> = configs.iter().map(|c| c.area()).collect();
        assert!(areas.windows(2).all(|w| w[0] <= w[1] + 100.0));
    }

    #[test]
    fn delay_estimates_beat_the_lut_for_two_level_configs() {
        let g = LogicConfig::granular_configs();
        let l = LogicConfig::lut_based_configs();
        let lut_delay = l.iter().find(|c| c.name() == "LUT3").unwrap().delay_ps();
        for name in ["NDMX", "XOAMX"] {
            let d = g.iter().find(|c| c.name() == name).unwrap().delay_ps();
            assert!(d < lut_delay + 15.0, "{name} {d} vs LUT {lut_delay}");
        }
    }
}
