//! VPGA patternable logic block (PLB) architectures — the primary
//! contribution of *Exploring Logic Block Granularity for Regular Fabrics*
//! (DATE 2004).
//!
//! The crate models the two PLB architectures the paper compares:
//!
//! * the **LUT-based PLB** of Figure 1 (one 3-LUT, two ND3WI gates, a DFF,
//!   and buffers) from the earlier FPL 2003 work, and
//! * the new **granular PLB** of Figure 4 (three 2:1 MUXes — one of them the
//!   specially sized XOA element — one ND3WI gate, a DFF, and dual-polarity
//!   programmable buffers),
//!
//! together with everything the CAD flow needs to target them:
//!
//! * [`params`] — the CellRater-substitute characterization: per-component
//!   areas, input capacitances and linear delay models, wire RC constants,
//!   and the 0.5 ns clock. Areas are calibrated so the paper's stated
//!   ratios hold exactly (granular PLB = 1.20× the LUT PLB's total area and
//!   1.266× its combinational area, §3.2).
//! * [`arch`] — [`PlbArchitecture`]: slot capacities ([`SlotSet`]), the
//!   characterized component [`vpga_netlist::Library`], PLB-level areas, and
//!   the ablation family (MUX-count and FF-ratio variants).
//! * [`config`] — the [`LogicConfig`]s of §2.3 (MX, XOA, ND3, NDMX, XOAMX,
//!   XOANDMX for the granular PLB; ND3 and LUT3 for the LUT-based PLB),
//!   each with its feasible-function set, resource demand, cost, and a
//!   structural [`Realization`] recovery used by logic compaction.
//! * [`matcher`] — Boolean matching of a ≤3-input function onto a single
//!   via-programmable component cell (pin binding + via configuration).
//! * [`plb`] — [`PlbInstance`] slot-occupancy accounting used by the packer,
//!   including the §2.2 demonstration that a full adder packs into a single
//!   granular PLB but not into a single LUT-based PLB.
//!
//! # Example
//!
//! ```
//! use vpga_core::arch::PlbArchitecture;
//!
//! let granular = PlbArchitecture::granular();
//! let lut = PlbArchitecture::lut_based();
//! let ratio = granular.area() / lut.area();
//! assert!((ratio - 1.20).abs() < 1e-6); // §3.2: "20% larger"
//! assert!(granular.fits_full_adder());
//! assert!(!lut.fits_full_adder());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod config;
pub mod matcher;
pub mod params;
pub mod plb;

pub use arch::{PlbArchitecture, SlotSet};
pub use config::{LogicConfig, NodeSource, Realization, RealizedCell};
pub use matcher::{CellMatch, PinSource};
pub use plb::PlbInstance;
