//! Boolean matching of a ≤3-input function onto one via-programmable
//! component cell.
//!
//! A match is a *pin binding* (each physical pin strapped to one of the
//! function's leaf variables or to a rail) plus a *via configuration* (one
//! function from the cell's allowed set). Binding the same leaf to two pins
//! is legal and frequently useful — e.g. `x ⊕ y` on a MUX binds `y` to both
//! data pins and lets the configuration invert one of them.

use vpga_logic::Tt3;
use vpga_netlist::LibCell;

/// Where a physical pin is strapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinSource {
    /// Leaf variable `i` of the target function.
    Leaf(usize),
    /// A constant rail.
    Const(bool),
}

impl PinSource {
    /// The truth table (over the leaf variables) this source carries.
    pub fn tt(self) -> Tt3 {
        match self {
            PinSource::Leaf(i) => Tt3::var(vpga_logic::Var::from_index(i).expect("leaf index < 3")),
            PinSource::Const(false) => Tt3::FALSE,
            PinSource::Const(true) => Tt3::TRUE,
        }
    }
}

/// A successful single-cell match: the pin binding and via configuration
/// that make the cell compute the target function.
#[derive(Clone, Debug, PartialEq)]
pub struct CellMatch {
    /// Binding of each physical pin, `pins[i]` for pin `i` (length =
    /// cell arity).
    pub pins: Vec<PinSource>,
    /// The via configuration (a member of the cell's allowed set).
    pub config: Tt3,
}

/// Composes a cell configuration with per-pin truth tables: the result on
/// leaf minterm `m` is `config` evaluated on the pin values at `m`.
pub fn compose(config: Tt3, pins: &[Tt3]) -> Tt3 {
    let mut out = 0u8;
    for m in 0..8u8 {
        let mut idx = 0u8;
        for (p, tt) in pins.iter().enumerate() {
            idx |= ((tt.bits() >> m) & 1) << p;
        }
        out |= ((config.bits() >> idx) & 1) << m;
    }
    Tt3::new(out)
}

/// Tries to match `target` (a function of the first `leaves` variables) onto
/// `cell`. Returns the binding and configuration on success.
///
/// Sequential cells never match. Targets that depend on variables at or
/// beyond `leaves` never match.
///
/// # Example
///
/// ```
/// use vpga_core::matcher::match_cell;
/// use vpga_core::PlbArchitecture;
/// use vpga_logic::{Tt3, Var};
///
/// let arch = PlbArchitecture::granular();
/// let mux = arch.library().cell_by_name("MUX").unwrap();
/// let xor2 = Tt3::var(Var::A) ^ Tt3::var(Var::B);
/// assert!(match_cell(mux, xor2, 2).is_some()); // "a MUX implements XOR"
/// let nd3 = arch.library().cell_by_name("ND3").unwrap();
/// assert!(match_cell(nd3, xor2, 2).is_none()); // ND2WI cannot (§2.1)
/// ```
pub fn match_cell(cell: &LibCell, target: Tt3, leaves: usize) -> Option<CellMatch> {
    if cell.is_sequential() || leaves > 3 {
        return None;
    }
    for v in vpga_logic::Var::ALL {
        if v.index() >= leaves && target.depends_on(v) {
            return None;
        }
    }
    let arity = cell.arity();
    // Fast path for fully programmable cells (the 3-LUT): identity binding.
    if cell.allowed().len() == 256 && arity >= leaves {
        let pins: Vec<PinSource> = (0..arity)
            .map(|i| {
                if i < leaves {
                    PinSource::Leaf(i)
                } else {
                    PinSource::Const(false)
                }
            })
            .collect();
        return Some(CellMatch {
            pins,
            config: target,
        });
    }
    let sources: Vec<PinSource> = (0..leaves)
        .map(PinSource::Leaf)
        .chain([PinSource::Const(false), PinSource::Const(true)])
        .collect();
    let mut binding = vec![PinSource::Const(false); arity];
    let mut pin_tts = vec![Tt3::FALSE; arity];
    match_rec(cell, target, &sources, &mut binding, &mut pin_tts, 0)
}

fn match_rec(
    cell: &LibCell,
    target: Tt3,
    sources: &[PinSource],
    binding: &mut Vec<PinSource>,
    pin_tts: &mut Vec<Tt3>,
    pin: usize,
) -> Option<CellMatch> {
    if pin == cell.arity() {
        for config in cell.allowed().iter() {
            if compose(config, pin_tts) == target {
                return Some(CellMatch {
                    pins: binding.clone(),
                    config,
                });
            }
        }
        return None;
    }
    for &s in sources {
        binding[pin] = s;
        pin_tts[pin] = s.tt();
        if let Some(m) = match_rec(cell, target, sources, binding, pin_tts, pin + 1) {
            return Some(m);
        }
    }
    None
}

/// The set of all functions of the first `leaves` variables that `cell` can
/// implement under some binding and configuration.
pub fn matchable_set(cell: &LibCell, leaves: usize) -> vpga_logic::FunctionSet256 {
    Tt3::all()
        .filter(|&t| match_cell(cell, t, leaves).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PlbArchitecture;
    use vpga_logic::{Tt3, Var};

    #[test]
    fn matches_verify_by_composition() {
        let arch = PlbArchitecture::granular();
        for cell_name in ["MUX", "XOA", "ND3", "ND2"] {
            let cell = arch.library().cell_by_name(cell_name).unwrap();
            for t in Tt3::all() {
                if let Some(m) = match_cell(cell, t, 3) {
                    let pin_tts: Vec<Tt3> = m.pins.iter().map(|p| p.tt()).collect();
                    assert_eq!(compose(m.config, &pin_tts), t, "{cell_name} {t}");
                    assert!(cell.allowed().contains(m.config));
                }
            }
        }
    }

    #[test]
    fn mux_matchable_set_equals_paper_mux_set() {
        let arch = PlbArchitecture::granular();
        let mux = arch.library().cell_by_name("MUX").unwrap();
        assert_eq!(matchable_set(mux, 3), *vpga_logic::cells::mux_set());
    }

    #[test]
    fn nd3_matchable_set_equals_paper_nd3_set() {
        let arch = PlbArchitecture::granular();
        let nd3 = arch.library().cell_by_name("ND3").unwrap();
        assert_eq!(matchable_set(nd3, 3), *vpga_logic::cells::nd3wi_set());
    }

    #[test]
    fn lut_matches_everything() {
        let arch = PlbArchitecture::lut_based();
        let lut = arch.library().cell_by_name("LUT3").unwrap();
        assert_eq!(matchable_set(lut, 3).len(), 256);
        let m = match_cell(lut, Tt3::XOR3, 3).unwrap();
        assert_eq!(m.config, Tt3::XOR3);
    }

    #[test]
    fn leaf_bound_targets_only() {
        let arch = PlbArchitecture::granular();
        let mux = arch.library().cell_by_name("MUX").unwrap();
        // A function depending on variable c cannot be a 2-leaf target.
        assert!(match_cell(mux, Tt3::MUX, 2).is_none());
        assert!(match_cell(mux, Tt3::MUX, 3).is_some());
    }

    #[test]
    fn dff_never_matches() {
        let arch = PlbArchitecture::granular();
        let dff = arch.library().cell_by_name("DFF").unwrap();
        assert!(match_cell(dff, Tt3::var(Var::A), 1).is_none());
    }

    #[test]
    fn constants_match_via_strapping() {
        let arch = PlbArchitecture::granular();
        let nd2 = arch.library().cell_by_name("ND2").unwrap();
        assert!(match_cell(nd2, Tt3::TRUE, 0).is_some());
        assert!(match_cell(nd2, Tt3::FALSE, 0).is_some());
    }
}
