//! Quickstart: run a small design through the full VPGA flow on both PLB
//! architectures and compare the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::{run_design, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DesignParams::tiny();
    let design = NamedDesign::Alu.generate(&params);
    println!(
        "design: {} ({} cells, {} inputs, {} outputs)\n",
        design.name(),
        design.num_cells(),
        design.inputs().len(),
        design.outputs().len()
    );

    for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
        println!("=== {arch} ===");
        let outcome = run_design(&design, &arch, &FlowConfig::default())?;
        if let Some(c) = &outcome.compaction {
            println!(
                "compaction: {} -> {} cells ({:.1} % area reduction)",
                c.cells_before,
                c.cells_after,
                100.0 * c.area_reduction()
            );
        }
        println!(
            "flow a (ASIC-style): die {:>8.0} µm², top-10 slack {:>8.1} ps",
            outcome.flow_a.die_area, outcome.flow_a.avg_top10_slack
        );
        let (cols, rows, used) = outcome.flow_b.array.expect("flow b packs an array");
        println!(
            "flow b (PLB array):  die {:>8.0} µm², top-10 slack {:>8.1} ps ({cols}×{rows} array, {used} PLBs used)",
            outcome.flow_b.die_area, outcome.flow_b.avg_top10_slack
        );
        println!(
            "packing overhead: {:+.1} % area\n",
            100.0 * outcome.area_overhead()
        );
    }
    Ok(())
}
