//! Prints the deterministic matrix fingerprints at tiny and small sizes —
//! the baseline the checkpoint/resume goldens are pinned against.

use vpga::designs::DesignParams;
use vpga::flow::report::Matrix;
use vpga::flow::FlowConfig;

fn main() {
    for (name, params) in [
        ("tiny", DesignParams::tiny()),
        ("small", DesignParams::small()),
    ] {
        let matrix = Matrix::run_parallel(&params, &FlowConfig::default(), 0).expect("matrix");
        println!("{name}: {:#018x}", matrix.fingerprint());
        for o in matrix.outcomes() {
            println!(
                "  {}/{}: {:#018x} (a {:#018x}, b {:#018x})",
                o.design,
                o.arch,
                o.fingerprint(),
                o.flow_a.fingerprint(),
                o.flow_b.fingerprint()
            );
        }
    }
}
