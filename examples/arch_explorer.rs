//! Architecture explorer: reproduce the §2 analysis interactively — the
//! S3-gate coverage ("196 of 256"), the Figure 2 census of infeasible
//! functions, the coverage ladder of the granular PLB's logic
//! configurations, and the via-site / area accounting of both PLBs.
//!
//! ```sh
//! cargo run --release --example arch_explorer
//! ```

use vpga::core::{LogicConfig, PlbArchitecture};
use vpga::logic::lut::LutMuxTree;
use vpga::logic::{adder, s3, Tt3};

fn main() {
    println!("== §2.1: the S3 gate (2:1 MUX driven by two ND2WI gates) ==");
    let feasible = s3::s3_set().len();
    println!("S3-feasible 3-input functions: {feasible} of 256");
    let any = Tt3::all()
        .filter(|&t| s3::s3_feasible_any_select(t))
        .count();
    println!("...with free select choice:    {any} of 256");
    println!(
        "modified S3 cell (Figure 3):   {} of 256\n",
        s3::modified_s3_set().len()
    );

    println!("== Figure 2: categories of S3-infeasible functions ==");
    print!("{}", s3::InfeasibleCensus::compute());
    println!();

    println!("== §2.3: logic configurations of the granular PLB ==");
    for cfg in LogicConfig::granular_configs() {
        println!("  {cfg}");
    }
    println!("\n== LUT-based PLB configurations ==");
    for cfg in LogicConfig::lut_based_configs() {
        println!("  {cfg}");
    }

    println!("\n== PLB-level accounting ==");
    for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
        println!("  {arch}");
        println!(
            "    fits a full adder in one PLB: {}",
            arch.fits_full_adder()
        );
    }
    println!("\n== Figure 5: the 3-LUT as three 2:1 MUXes ==");
    let sum = adder::sum();
    let tree = LutMuxTree::decompose(sum);
    let (lo, hi) = tree.intermediates(sum);
    println!(
        "  f = sum(a,b,cin) = {sum}: select0 = {}, select1 = {}",
        tree.select0, tree.select1
    );
    println!("  exposed intermediates: {lo} (= a ⊕ b, the propagate!) and {hi}");
    println!(
        "  stored LUT bits: {:08b} (round-trips exactly)",
        tree.lut_bits()
    );

    let g = PlbArchitecture::granular();
    let l = PlbArchitecture::lut_based();
    println!(
        "\n  area ratio granular/LUT:      {:.3}  (paper: 1.20)",
        g.area() / l.area()
    );
    println!(
        "  comb area ratio granular/LUT: {:.3}  (paper: 1.266)",
        g.comb_area() / l.comb_area()
    );
    println!(
        "  via sites per PLB:            {} vs {} (granularity costs vias, §2.3)",
        g.via_sites(),
        l.via_sites()
    );
}
