//! The §2.2 demonstration: a full adder packs into a *single* granular PLB
//! (three MUX-capable slots + the ND3WI gate) but not into a single
//! LUT-based PLB. This example builds the paper's exact structure —
//! propagate on the XOA, sum on a MUX, carry on a MUX with the generate
//! term on the ND3WI — verifies each via configuration functionally, and
//! checks the slot accounting on both architectures.
//!
//! ```sh
//! cargo run --release --example full_adder_packing
//! ```

use vpga::core::{PlbArchitecture, PlbInstance, SlotSet};
use vpga::logic::{adder, Tt3, Var};
use vpga::netlist::CellClass;

fn main() {
    println!("== The full-adder functions ==");
    println!("sum   = a ⊕ b ⊕ cin  : {}", adder::sum());
    println!("carry = maj(a,b,cin) : {}", adder::carry());
    println!("p     = a ⊕ b        : {}", adder::propagate());
    println!("g     = a · b        : {}", adder::generate());

    // §2.2 structure, as truth-table composition.
    let p = Tt3::mux(Tt3::var(Var::A), Tt3::var(Var::B), !Tt3::var(Var::B));
    let sum = Tt3::mux(p, Tt3::var(Var::C), !Tt3::var(Var::C));
    let cout = Tt3::mux(p, adder::generate(), Tt3::var(Var::C));
    assert_eq!(p, adder::propagate());
    assert_eq!(sum, adder::sum());
    assert_eq!(cout, adder::carry());
    println!("\nMUX decomposition of §2.2 verified:");
    println!("  XOA:  p    = mux(a, b, b')          [propagate]");
    println!("  MUX1: sum  = mux(p, cin, cin')");
    println!("  MUX2: cout = mux(p, g, cin)");
    println!("  ND3:  g    = a · b                  [generate]");

    println!("\n== Slot accounting ==");
    let mut demand = SlotSet::new();
    demand.add(CellClass::Xoa, 1);
    demand.add(CellClass::Mux, 2);
    demand.add(CellClass::Nd3, 1);
    println!("full-adder demand: {demand}");

    for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
        let mut plb = PlbInstance::new(&arch);
        let fits_structurally = plb.place_group(&demand);
        println!(
            "\n{:>9}: capacity {} -> shared-P structure fits: {}, fits_full_adder(): {}",
            arch.name(),
            arch.capacity(),
            fits_structurally,
            arch.fits_full_adder()
        );
        if !fits_structurally {
            // Show why: the LUT PLB would need two LUTs.
            let sum_in_nd3 = vpga::logic::cells::nd3wi_set().contains(adder::sum());
            let carry_in_nd3 = vpga::logic::cells::nd3wi_set().contains(adder::carry());
            println!(
                "  sum needs a LUT (ND3WI-feasible: {sum_in_nd3}), carry needs a LUT \
                 (ND3WI-feasible: {carry_in_nd3}), but only one 3-LUT per PLB"
            );
        }
    }
}
