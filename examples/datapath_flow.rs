//! Domain-specific walkthrough: take the mux/XOR-rich FPU datapath through
//! each stage of the Figure 6 flow separately, printing what every stage
//! does — mapping, compaction, placement, buffering, packing, routing, and
//! timing — on the granular PLB.
//!
//! ```sh
//! cargo run --release --example datapath_flow
//! ```

use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::netlist::library::generic;
use vpga::netlist::stats::NetlistStats;
use vpga::pack::PackConfig;
use vpga::place::PlaceConfig;
use vpga::route::RouteConfig;
use vpga::synth::MappingStats;
use vpga::timing::TimingConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DesignParams::tiny();
    let arch = PlbArchitecture::granular();
    let src = generic::library();
    let lib = arch.library();

    // RTL-equivalent: the generated gate-level FPU datapath.
    let design = NamedDesign::Fpu.generate(&params);
    let gates = NetlistStats::compute(&design, &src).nand2_equivalent(generic::NAND2_AREA);
    println!("FPU datapath: {:.0} NAND2-equivalent gates", gates);

    // Synthesis / technology mapping (Design Compiler substitute).
    let mut netlist = vpga::synth::map_netlist_fast(&design, &src, &arch)?;
    println!("\n-- after technology mapping --");
    print!("{}", MappingStats::compute(&netlist, lib));

    // Regularity-driven logic compaction.
    let report = vpga::compact::compact(&mut netlist, &arch)?;
    println!("\n-- after compaction --\n{report}");
    print!("{}", MappingStats::compute(&netlist, lib));

    // Timing-driven placement (Dolphin substitute).
    let place_cfg = PlaceConfig::default();
    let mut placement = vpga::place::place(&netlist, lib, &place_cfg);
    let sta = vpga::timing::analyze(&netlist, lib, &placement, None, &TimingConfig::default());
    println!(
        "\n-- after placement --\nHPWL {:.0} µm, est. critical delay {:.0} ps",
        placement.total_hpwl(&netlist),
        sta.critical_delay()
    );

    // Physical synthesis: buffers on long/high-fanout nets.
    let max_len = placement.die().width() * 0.5;
    let buffered = vpga::place::insert_buffers(&mut netlist, lib, &mut placement, 12, max_len)?;
    vpga::place::refine(&netlist, lib, &mut placement, &place_cfg, 0.2);
    println!(
        "\n-- physical synthesis --\ninserted {} buffers",
        buffered.total()
    );

    // Packing into the regular PLB array (the step flow a skips).
    let array = vpga::pack::pack_iterative(
        &netlist,
        &arch,
        &mut placement,
        &place_cfg,
        &PackConfig::default(),
    )?;
    println!("\n-- after packing --\n{array}");

    // Routing and post-layout timing on the array.
    let route_cfg = RouteConfig {
        tile_size: Some(array.plb_pitch()),
        ..RouteConfig::default()
    };
    let routing = vpga::route::route(&netlist, lib, &placement, &route_cfg);
    let sta = vpga::timing::analyze(
        &netlist,
        lib,
        &placement,
        Some(&routing),
        &TimingConfig::default(),
    );
    println!(
        "\n-- post-layout --\nwirelength {:.0} µm ({} overflows), critical delay {:.0} ps, \
         top-10 slack {:.1} ps at the 500 ps cycle",
        routing.total_length(),
        routing.overflow_edges(),
        sta.critical_delay(),
        sta.avg_top_slack(10)
    );
    Ok(())
}
