/root/repo/target/debug/examples/datapath_flow-0e00aad43de10b0d.d: examples/datapath_flow.rs

/root/repo/target/debug/examples/datapath_flow-0e00aad43de10b0d: examples/datapath_flow.rs

examples/datapath_flow.rs:
