/root/repo/target/debug/examples/arch_explorer-1da8ffb6703c9d00.d: examples/arch_explorer.rs

/root/repo/target/debug/examples/arch_explorer-1da8ffb6703c9d00: examples/arch_explorer.rs

examples/arch_explorer.rs:
