/root/repo/target/debug/examples/full_adder_packing-9f58ee113304e571.d: examples/full_adder_packing.rs

/root/repo/target/debug/examples/full_adder_packing-9f58ee113304e571: examples/full_adder_packing.rs

examples/full_adder_packing.rs:
