/root/repo/target/debug/examples/quickstart-7f5d6015bc8f0005.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7f5d6015bc8f0005: examples/quickstart.rs

examples/quickstart.rs:
