/root/repo/target/debug/deps/power-6470b20db9e83c6a.d: crates/bench/src/bin/power.rs

/root/repo/target/debug/deps/power-6470b20db9e83c6a: crates/bench/src/bin/power.rs

crates/bench/src/bin/power.rs:
