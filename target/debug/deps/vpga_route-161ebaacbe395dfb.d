/root/repo/target/debug/deps/vpga_route-161ebaacbe395dfb.d: crates/route/src/lib.rs

/root/repo/target/debug/deps/libvpga_route-161ebaacbe395dfb.rlib: crates/route/src/lib.rs

/root/repo/target/debug/deps/libvpga_route-161ebaacbe395dfb.rmeta: crates/route/src/lib.rs

crates/route/src/lib.rs:
