/root/repo/target/debug/deps/vpga_pack-93c239aade709b7c.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/debug/deps/libvpga_pack-93c239aade709b7c.rlib: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/debug/deps/libvpga_pack-93c239aade709b7c.rmeta: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
