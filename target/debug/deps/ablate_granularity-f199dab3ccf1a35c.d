/root/repo/target/debug/deps/ablate_granularity-f199dab3ccf1a35c.d: crates/bench/src/bin/ablate_granularity.rs

/root/repo/target/debug/deps/ablate_granularity-f199dab3ccf1a35c: crates/bench/src/bin/ablate_granularity.rs

crates/bench/src/bin/ablate_granularity.rs:
