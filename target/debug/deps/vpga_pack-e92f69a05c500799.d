/root/repo/target/debug/deps/vpga_pack-e92f69a05c500799.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/debug/deps/vpga_pack-e92f69a05c500799: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
