/root/repo/target/debug/deps/vpga_designs-603c9bc861abd8e1.d: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/debug/deps/libvpga_designs-603c9bc861abd8e1.rlib: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/debug/deps/libvpga_designs-603c9bc861abd8e1.rmeta: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

crates/designs/src/lib.rs:
crates/designs/src/arith.rs:
crates/designs/src/blocks.rs:
crates/designs/src/designer.rs:
crates/designs/src/designs.rs:
