/root/repo/target/debug/deps/experiments_golden-10a9bba0c6520f6a.d: tests/experiments_golden.rs

/root/repo/target/debug/deps/experiments_golden-10a9bba0c6520f6a: tests/experiments_golden.rs

tests/experiments_golden.rs:
