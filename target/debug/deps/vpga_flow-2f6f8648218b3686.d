/root/repo/target/debug/deps/vpga_flow-2f6f8648218b3686.d: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/debug/deps/vpga_flow-2f6f8648218b3686: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

crates/flow/src/lib.rs:
crates/flow/src/exec.rs:
crates/flow/src/pipeline.rs:
crates/flow/src/report.rs:
crates/flow/src/stats.rs:
