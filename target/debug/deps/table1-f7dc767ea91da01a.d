/root/repo/target/debug/deps/table1-f7dc767ea91da01a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f7dc767ea91da01a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
