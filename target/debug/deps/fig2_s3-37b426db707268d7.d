/root/repo/target/debug/deps/fig2_s3-37b426db707268d7.d: crates/bench/src/bin/fig2_s3.rs

/root/repo/target/debug/deps/fig2_s3-37b426db707268d7: crates/bench/src/bin/fig2_s3.rs

crates/bench/src/bin/fig2_s3.rs:
