/root/repo/target/debug/deps/vpga-271088479c79db2e.d: src/bin/vpga.rs

/root/repo/target/debug/deps/vpga-271088479c79db2e: src/bin/vpga.rs

src/bin/vpga.rs:
