/root/repo/target/debug/deps/compaction-d6d6728de37f6823.d: crates/bench/src/bin/compaction.rs

/root/repo/target/debug/deps/compaction-d6d6728de37f6823: crates/bench/src/bin/compaction.rs

crates/bench/src/bin/compaction.rs:
