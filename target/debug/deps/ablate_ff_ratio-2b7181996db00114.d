/root/repo/target/debug/deps/ablate_ff_ratio-2b7181996db00114.d: crates/bench/src/bin/ablate_ff_ratio.rs

/root/repo/target/debug/deps/ablate_ff_ratio-2b7181996db00114: crates/bench/src/bin/ablate_ff_ratio.rs

crates/bench/src/bin/ablate_ff_ratio.rs:
