/root/repo/target/debug/deps/vpga_fabric-2b4c750d2c39b39f.d: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/debug/deps/libvpga_fabric-2b4c750d2c39b39f.rlib: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/debug/deps/libvpga_fabric-2b4c750d2c39b39f.rmeta: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

crates/fabric/src/lib.rs:
crates/fabric/src/program.rs:
crates/fabric/src/via.rs:
