/root/repo/target/debug/deps/vpga_route-4eb68d07ebf1a3b4.d: crates/route/src/lib.rs

/root/repo/target/debug/deps/vpga_route-4eb68d07ebf1a3b4: crates/route/src/lib.rs

crates/route/src/lib.rs:
