/root/repo/target/debug/deps/vpga_place-d4b6ff93edfbdae4.d: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/debug/deps/libvpga_place-d4b6ff93edfbdae4.rlib: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/debug/deps/libvpga_place-d4b6ff93edfbdae4.rmeta: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

crates/place/src/lib.rs:
crates/place/src/anneal.rs:
crates/place/src/buffers.rs:
crates/place/src/grid.rs:
