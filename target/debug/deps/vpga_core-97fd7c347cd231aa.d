/root/repo/target/debug/deps/vpga_core-97fd7c347cd231aa.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/debug/deps/libvpga_core-97fd7c347cd231aa.rlib: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/debug/deps/libvpga_core-97fd7c347cd231aa.rmeta: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/config.rs:
crates/core/src/matcher.rs:
crates/core/src/params.rs:
crates/core/src/plb.rs:
