/root/repo/target/debug/deps/flow_integration-d70e8682cb340ef5.d: tests/flow_integration.rs

/root/repo/target/debug/deps/flow_integration-d70e8682cb340ef5: tests/flow_integration.rs

tests/flow_integration.rs:
