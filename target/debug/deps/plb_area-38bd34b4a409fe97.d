/root/repo/target/debug/deps/plb_area-38bd34b4a409fe97.d: crates/bench/src/bin/plb_area.rs

/root/repo/target/debug/deps/plb_area-38bd34b4a409fe97: crates/bench/src/bin/plb_area.rs

crates/bench/src/bin/plb_area.rs:
