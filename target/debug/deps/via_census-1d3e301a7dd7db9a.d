/root/repo/target/debug/deps/via_census-1d3e301a7dd7db9a.d: crates/bench/src/bin/via_census.rs

/root/repo/target/debug/deps/via_census-1d3e301a7dd7db9a: crates/bench/src/bin/via_census.rs

crates/bench/src/bin/via_census.rs:
