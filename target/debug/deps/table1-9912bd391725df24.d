/root/repo/target/debug/deps/table1-9912bd391725df24.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9912bd391725df24: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
