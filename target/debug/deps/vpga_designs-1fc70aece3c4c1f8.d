/root/repo/target/debug/deps/vpga_designs-1fc70aece3c4c1f8.d: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/debug/deps/vpga_designs-1fc70aece3c4c1f8: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

crates/designs/src/lib.rs:
crates/designs/src/arith.rs:
crates/designs/src/blocks.rs:
crates/designs/src/designer.rs:
crates/designs/src/designs.rs:
