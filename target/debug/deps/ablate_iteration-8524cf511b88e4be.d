/root/repo/target/debug/deps/ablate_iteration-8524cf511b88e4be.d: crates/bench/src/bin/ablate_iteration.rs

/root/repo/target/debug/deps/ablate_iteration-8524cf511b88e4be: crates/bench/src/bin/ablate_iteration.rs

crates/bench/src/bin/ablate_iteration.rs:
