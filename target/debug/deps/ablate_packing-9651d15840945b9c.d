/root/repo/target/debug/deps/ablate_packing-9651d15840945b9c.d: crates/bench/src/bin/ablate_packing.rs

/root/repo/target/debug/deps/ablate_packing-9651d15840945b9c: crates/bench/src/bin/ablate_packing.rs

crates/bench/src/bin/ablate_packing.rs:
