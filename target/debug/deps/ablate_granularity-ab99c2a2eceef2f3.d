/root/repo/target/debug/deps/ablate_granularity-ab99c2a2eceef2f3.d: crates/bench/src/bin/ablate_granularity.rs

/root/repo/target/debug/deps/ablate_granularity-ab99c2a2eceef2f3: crates/bench/src/bin/ablate_granularity.rs

crates/bench/src/bin/ablate_granularity.rs:
