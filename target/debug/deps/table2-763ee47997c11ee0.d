/root/repo/target/debug/deps/table2-763ee47997c11ee0.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-763ee47997c11ee0: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
