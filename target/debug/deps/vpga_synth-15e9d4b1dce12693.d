/root/repo/target/debug/deps/vpga_synth-15e9d4b1dce12693.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/debug/deps/libvpga_synth-15e9d4b1dce12693.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/debug/deps/libvpga_synth-15e9d4b1dce12693.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/error.rs:
crates/synth/src/map.rs:
crates/synth/src/rewrite.rs:
