/root/repo/target/debug/deps/vpga_place-da9ab6460bb9c436.d: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/debug/deps/vpga_place-da9ab6460bb9c436: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

crates/place/src/lib.rs:
crates/place/src/anneal.rs:
crates/place/src/buffers.rs:
crates/place/src/grid.rs:
