/root/repo/target/debug/deps/vpga_compact-d7e087ad136eb231.d: crates/compact/src/lib.rs

/root/repo/target/debug/deps/libvpga_compact-d7e087ad136eb231.rlib: crates/compact/src/lib.rs

/root/repo/target/debug/deps/libvpga_compact-d7e087ad136eb231.rmeta: crates/compact/src/lib.rs

crates/compact/src/lib.rs:
