/root/repo/target/debug/deps/vpga-5fced2eaabc22cc4.d: src/lib.rs

/root/repo/target/debug/deps/vpga-5fced2eaabc22cc4: src/lib.rs

src/lib.rs:
