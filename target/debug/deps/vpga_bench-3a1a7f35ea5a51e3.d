/root/repo/target/debug/deps/vpga_bench-3a1a7f35ea5a51e3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvpga_bench-3a1a7f35ea5a51e3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvpga_bench-3a1a7f35ea5a51e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
