/root/repo/target/debug/deps/cli-95356527ebc07f94.d: tests/cli.rs

/root/repo/target/debug/deps/cli-95356527ebc07f94: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_vpga=/root/repo/target/debug/vpga
