/root/repo/target/debug/deps/vpga_synth-eb8bb866f72b0c5f.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/debug/deps/vpga_synth-eb8bb866f72b0c5f: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/error.rs:
crates/synth/src/map.rs:
crates/synth/src/rewrite.rs:
