/root/repo/target/debug/deps/compaction-35a8bd7a0600359c.d: crates/bench/src/bin/compaction.rs

/root/repo/target/debug/deps/compaction-35a8bd7a0600359c: crates/bench/src/bin/compaction.rs

crates/bench/src/bin/compaction.rs:
