/root/repo/target/debug/deps/vpga_timing-ba6e0101a226f3ca.d: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/debug/deps/vpga_timing-ba6e0101a226f3ca: crates/timing/src/lib.rs crates/timing/src/power.rs

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
