/root/repo/target/debug/deps/vpga_flow-e01f80c1a84bcdf4.d: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/debug/deps/libvpga_flow-e01f80c1a84bcdf4.rlib: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/debug/deps/libvpga_flow-e01f80c1a84bcdf4.rmeta: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

crates/flow/src/lib.rs:
crates/flow/src/exec.rs:
crates/flow/src/pipeline.rs:
crates/flow/src/report.rs:
crates/flow/src/stats.rs:
