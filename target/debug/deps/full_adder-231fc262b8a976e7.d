/root/repo/target/debug/deps/full_adder-231fc262b8a976e7.d: crates/bench/src/bin/full_adder.rs

/root/repo/target/debug/deps/full_adder-231fc262b8a976e7: crates/bench/src/bin/full_adder.rs

crates/bench/src/bin/full_adder.rs:
