/root/repo/target/debug/deps/full_adder-71f0e951e3e6aca7.d: crates/bench/src/bin/full_adder.rs

/root/repo/target/debug/deps/full_adder-71f0e951e3e6aca7: crates/bench/src/bin/full_adder.rs

crates/bench/src/bin/full_adder.rs:
