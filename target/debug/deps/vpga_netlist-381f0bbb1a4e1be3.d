/root/repo/target/debug/deps/vpga_netlist-381f0bbb1a4e1be3.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs

/root/repo/target/debug/deps/vpga_netlist-381f0bbb1a4e1be3: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/io.rs:
crates/netlist/src/library.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/stats.rs:
