/root/repo/target/debug/deps/vpga_flowmap-5c189f765e82ebc9.d: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/debug/deps/libvpga_flowmap-5c189f765e82ebc9.rlib: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/debug/deps/libvpga_flowmap-5c189f765e82ebc9.rmeta: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

crates/flowmap/src/lib.rs:
crates/flowmap/src/dag.rs:
crates/flowmap/src/flow.rs:
crates/flowmap/src/label.rs:
