/root/repo/target/debug/deps/vpga-cdf11b92a005c0a6.d: src/bin/vpga.rs

/root/repo/target/debug/deps/vpga-cdf11b92a005c0a6: src/bin/vpga.rs

src/bin/vpga.rs:
