/root/repo/target/debug/deps/determinism-83f8b75e09753798.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-83f8b75e09753798: tests/determinism.rs

tests/determinism.rs:
