/root/repo/target/debug/deps/via_census-e42337866d20e4c8.d: crates/bench/src/bin/via_census.rs

/root/repo/target/debug/deps/via_census-e42337866d20e4c8: crates/bench/src/bin/via_census.rs

crates/bench/src/bin/via_census.rs:
