/root/repo/target/debug/deps/vpga_fabric-1c107177dd992e42.d: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/debug/deps/vpga_fabric-1c107177dd992e42: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

crates/fabric/src/lib.rs:
crates/fabric/src/program.rs:
crates/fabric/src/via.rs:
