/root/repo/target/debug/deps/vpga_flowmap-19f5b3be2fb421f8.d: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/debug/deps/vpga_flowmap-19f5b3be2fb421f8: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

crates/flowmap/src/lib.rs:
crates/flowmap/src/dag.rs:
crates/flowmap/src/flow.rs:
crates/flowmap/src/label.rs:
