/root/repo/target/debug/deps/table2-fd7411caa55afd63.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-fd7411caa55afd63: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
