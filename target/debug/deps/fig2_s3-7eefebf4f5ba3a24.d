/root/repo/target/debug/deps/fig2_s3-7eefebf4f5ba3a24.d: crates/bench/src/bin/fig2_s3.rs

/root/repo/target/debug/deps/fig2_s3-7eefebf4f5ba3a24: crates/bench/src/bin/fig2_s3.rs

crates/bench/src/bin/fig2_s3.rs:
