/root/repo/target/debug/deps/ablate_packing-24e6164981a140e3.d: crates/bench/src/bin/ablate_packing.rs

/root/repo/target/debug/deps/ablate_packing-24e6164981a140e3: crates/bench/src/bin/ablate_packing.rs

crates/bench/src/bin/ablate_packing.rs:
