/root/repo/target/debug/deps/paper_claims-9f01ee5ad94def70.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9f01ee5ad94def70: tests/paper_claims.rs

tests/paper_claims.rs:
