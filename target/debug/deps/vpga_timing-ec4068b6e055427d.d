/root/repo/target/debug/deps/vpga_timing-ec4068b6e055427d.d: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/debug/deps/libvpga_timing-ec4068b6e055427d.rlib: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/debug/deps/libvpga_timing-ec4068b6e055427d.rmeta: crates/timing/src/lib.rs crates/timing/src/power.rs

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
