/root/repo/target/debug/deps/ablate_homogeneous-83f1bfcd044e529c.d: crates/bench/src/bin/ablate_homogeneous.rs

/root/repo/target/debug/deps/ablate_homogeneous-83f1bfcd044e529c: crates/bench/src/bin/ablate_homogeneous.rs

crates/bench/src/bin/ablate_homogeneous.rs:
