/root/repo/target/debug/deps/plb_area-93acb1c28e23ed8e.d: crates/bench/src/bin/plb_area.rs

/root/repo/target/debug/deps/plb_area-93acb1c28e23ed8e: crates/bench/src/bin/plb_area.rs

crates/bench/src/bin/plb_area.rs:
