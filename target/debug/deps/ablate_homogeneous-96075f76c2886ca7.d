/root/repo/target/debug/deps/ablate_homogeneous-96075f76c2886ca7.d: crates/bench/src/bin/ablate_homogeneous.rs

/root/repo/target/debug/deps/ablate_homogeneous-96075f76c2886ca7: crates/bench/src/bin/ablate_homogeneous.rs

crates/bench/src/bin/ablate_homogeneous.rs:
