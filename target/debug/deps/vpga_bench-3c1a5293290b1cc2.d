/root/repo/target/debug/deps/vpga_bench-3c1a5293290b1cc2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/vpga_bench-3c1a5293290b1cc2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
