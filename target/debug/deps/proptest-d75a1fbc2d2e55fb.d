/root/repo/target/debug/deps/proptest-d75a1fbc2d2e55fb.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-d75a1fbc2d2e55fb: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
