/root/repo/target/debug/deps/power-fabb1d4e3eb79119.d: crates/bench/src/bin/power.rs

/root/repo/target/debug/deps/power-fabb1d4e3eb79119: crates/bench/src/bin/power.rs

crates/bench/src/bin/power.rs:
