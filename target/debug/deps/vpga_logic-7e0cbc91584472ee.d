/root/repo/target/debug/deps/vpga_logic-7e0cbc91584472ee.d: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs

/root/repo/target/debug/deps/libvpga_logic-7e0cbc91584472ee.rlib: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs

/root/repo/target/debug/deps/libvpga_logic-7e0cbc91584472ee.rmeta: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs

crates/logic/src/lib.rs:
crates/logic/src/adder.rs:
crates/logic/src/cells.rs:
crates/logic/src/error.rs:
crates/logic/src/lut.rs:
crates/logic/src/npn.rs:
crates/logic/src/s3.rs:
crates/logic/src/sets.rs:
crates/logic/src/tt.rs:
crates/logic/src/tt3.rs:
