/root/repo/target/debug/deps/ablate_iteration-ae4ceaa381307b3d.d: crates/bench/src/bin/ablate_iteration.rs

/root/repo/target/debug/deps/ablate_iteration-ae4ceaa381307b3d: crates/bench/src/bin/ablate_iteration.rs

crates/bench/src/bin/ablate_iteration.rs:
