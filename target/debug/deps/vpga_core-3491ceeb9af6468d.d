/root/repo/target/debug/deps/vpga_core-3491ceeb9af6468d.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/debug/deps/vpga_core-3491ceeb9af6468d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/config.rs:
crates/core/src/matcher.rs:
crates/core/src/params.rs:
crates/core/src/plb.rs:
