/root/repo/target/debug/deps/proptest-72b65f1ff999b1e9.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-72b65f1ff999b1e9.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-72b65f1ff999b1e9.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
