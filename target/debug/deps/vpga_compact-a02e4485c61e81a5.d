/root/repo/target/debug/deps/vpga_compact-a02e4485c61e81a5.d: crates/compact/src/lib.rs

/root/repo/target/debug/deps/vpga_compact-a02e4485c61e81a5: crates/compact/src/lib.rs

crates/compact/src/lib.rs:
