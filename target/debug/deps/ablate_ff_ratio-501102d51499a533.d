/root/repo/target/debug/deps/ablate_ff_ratio-501102d51499a533.d: crates/bench/src/bin/ablate_ff_ratio.rs

/root/repo/target/debug/deps/ablate_ff_ratio-501102d51499a533: crates/bench/src/bin/ablate_ff_ratio.rs

crates/bench/src/bin/ablate_ff_ratio.rs:
