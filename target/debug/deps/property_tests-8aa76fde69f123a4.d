/root/repo/target/debug/deps/property_tests-8aa76fde69f123a4.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-8aa76fde69f123a4: tests/property_tests.rs

tests/property_tests.rs:
