/root/repo/target/debug/deps/vpga-1098d6340a8875b5.d: src/lib.rs

/root/repo/target/debug/deps/libvpga-1098d6340a8875b5.rlib: src/lib.rs

/root/repo/target/debug/deps/libvpga-1098d6340a8875b5.rmeta: src/lib.rs

src/lib.rs:
