/root/repo/target/release/examples/quickstart-dbe5c180b73d3756.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-dbe5c180b73d3756: examples/quickstart.rs

examples/quickstart.rs:
