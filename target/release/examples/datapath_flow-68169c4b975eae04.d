/root/repo/target/release/examples/datapath_flow-68169c4b975eae04.d: examples/datapath_flow.rs Cargo.toml

/root/repo/target/release/examples/libdatapath_flow-68169c4b975eae04.rmeta: examples/datapath_flow.rs Cargo.toml

examples/datapath_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
