/root/repo/target/release/examples/full_adder_packing-03f0e21adfb6bf70.d: examples/full_adder_packing.rs Cargo.toml

/root/repo/target/release/examples/libfull_adder_packing-03f0e21adfb6bf70.rmeta: examples/full_adder_packing.rs Cargo.toml

examples/full_adder_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
