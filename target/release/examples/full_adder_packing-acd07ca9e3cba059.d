/root/repo/target/release/examples/full_adder_packing-acd07ca9e3cba059.d: examples/full_adder_packing.rs

/root/repo/target/release/examples/full_adder_packing-acd07ca9e3cba059: examples/full_adder_packing.rs

examples/full_adder_packing.rs:
