/root/repo/target/release/examples/datapath_flow-1963584588672071.d: examples/datapath_flow.rs

/root/repo/target/release/examples/datapath_flow-1963584588672071: examples/datapath_flow.rs

examples/datapath_flow.rs:
