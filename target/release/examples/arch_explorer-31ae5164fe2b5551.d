/root/repo/target/release/examples/arch_explorer-31ae5164fe2b5551.d: examples/arch_explorer.rs

/root/repo/target/release/examples/arch_explorer-31ae5164fe2b5551: examples/arch_explorer.rs

examples/arch_explorer.rs:
