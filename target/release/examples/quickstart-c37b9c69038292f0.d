/root/repo/target/release/examples/quickstart-c37b9c69038292f0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-c37b9c69038292f0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
