/root/repo/target/release/examples/arch_explorer-82c0266c3121bd94.d: examples/arch_explorer.rs Cargo.toml

/root/repo/target/release/examples/libarch_explorer-82c0266c3121bd94.rmeta: examples/arch_explorer.rs Cargo.toml

examples/arch_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
