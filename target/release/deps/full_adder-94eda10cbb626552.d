/root/repo/target/release/deps/full_adder-94eda10cbb626552.d: crates/bench/src/bin/full_adder.rs Cargo.toml

/root/repo/target/release/deps/libfull_adder-94eda10cbb626552.rmeta: crates/bench/src/bin/full_adder.rs Cargo.toml

crates/bench/src/bin/full_adder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
