/root/repo/target/release/deps/vpga_bench-51526e6557509f22.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga_bench-51526e6557509f22.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
