/root/repo/target/release/deps/vpga_designs-d946244fa599bd45.d: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/release/deps/libvpga_designs-d946244fa599bd45.rlib: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/release/deps/libvpga_designs-d946244fa599bd45.rmeta: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

crates/designs/src/lib.rs:
crates/designs/src/arith.rs:
crates/designs/src/blocks.rs:
crates/designs/src/designer.rs:
crates/designs/src/designs.rs:
