/root/repo/target/release/deps/vpga_designs-a686932e22e0b704.d: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs Cargo.toml

/root/repo/target/release/deps/libvpga_designs-a686932e22e0b704.rmeta: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs Cargo.toml

crates/designs/src/lib.rs:
crates/designs/src/arith.rs:
crates/designs/src/blocks.rs:
crates/designs/src/designer.rs:
crates/designs/src/designs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
