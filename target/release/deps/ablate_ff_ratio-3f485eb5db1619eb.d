/root/repo/target/release/deps/ablate_ff_ratio-3f485eb5db1619eb.d: crates/bench/src/bin/ablate_ff_ratio.rs

/root/repo/target/release/deps/ablate_ff_ratio-3f485eb5db1619eb: crates/bench/src/bin/ablate_ff_ratio.rs

crates/bench/src/bin/ablate_ff_ratio.rs:
