/root/repo/target/release/deps/vpga_compact-ea44728998aa0c87.d: crates/compact/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga_compact-ea44728998aa0c87.rmeta: crates/compact/src/lib.rs Cargo.toml

crates/compact/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
