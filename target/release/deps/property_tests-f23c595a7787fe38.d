/root/repo/target/release/deps/property_tests-f23c595a7787fe38.d: tests/property_tests.rs

/root/repo/target/release/deps/property_tests-f23c595a7787fe38: tests/property_tests.rs

tests/property_tests.rs:
