/root/repo/target/release/deps/table2-d814733e43dda4a2.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d814733e43dda4a2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
