/root/repo/target/release/deps/compaction-1558f05a8fa757ef.d: crates/bench/src/bin/compaction.rs Cargo.toml

/root/repo/target/release/deps/libcompaction-1558f05a8fa757ef.rmeta: crates/bench/src/bin/compaction.rs Cargo.toml

crates/bench/src/bin/compaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
