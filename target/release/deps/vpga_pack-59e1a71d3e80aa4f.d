/root/repo/target/release/deps/vpga_pack-59e1a71d3e80aa4f.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/release/deps/vpga_pack-59e1a71d3e80aa4f: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
