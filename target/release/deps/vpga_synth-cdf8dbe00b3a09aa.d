/root/repo/target/release/deps/vpga_synth-cdf8dbe00b3a09aa.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/release/deps/libvpga_synth-cdf8dbe00b3a09aa.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/release/deps/libvpga_synth-cdf8dbe00b3a09aa.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/error.rs:
crates/synth/src/map.rs:
crates/synth/src/rewrite.rs:
