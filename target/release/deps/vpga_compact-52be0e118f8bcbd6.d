/root/repo/target/release/deps/vpga_compact-52be0e118f8bcbd6.d: crates/compact/src/lib.rs

/root/repo/target/release/deps/libvpga_compact-52be0e118f8bcbd6.rlib: crates/compact/src/lib.rs

/root/repo/target/release/deps/libvpga_compact-52be0e118f8bcbd6.rmeta: crates/compact/src/lib.rs

crates/compact/src/lib.rs:
