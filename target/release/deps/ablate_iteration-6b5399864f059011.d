/root/repo/target/release/deps/ablate_iteration-6b5399864f059011.d: crates/bench/src/bin/ablate_iteration.rs Cargo.toml

/root/repo/target/release/deps/libablate_iteration-6b5399864f059011.rmeta: crates/bench/src/bin/ablate_iteration.rs Cargo.toml

crates/bench/src/bin/ablate_iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
