/root/repo/target/release/deps/vpga-109347171f8a0630.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga-109347171f8a0630.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
