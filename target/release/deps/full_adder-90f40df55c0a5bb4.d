/root/repo/target/release/deps/full_adder-90f40df55c0a5bb4.d: crates/bench/src/bin/full_adder.rs

/root/repo/target/release/deps/full_adder-90f40df55c0a5bb4: crates/bench/src/bin/full_adder.rs

crates/bench/src/bin/full_adder.rs:
