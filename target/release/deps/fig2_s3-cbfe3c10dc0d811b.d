/root/repo/target/release/deps/fig2_s3-cbfe3c10dc0d811b.d: crates/bench/src/bin/fig2_s3.rs Cargo.toml

/root/repo/target/release/deps/libfig2_s3-cbfe3c10dc0d811b.rmeta: crates/bench/src/bin/fig2_s3.rs Cargo.toml

crates/bench/src/bin/fig2_s3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
