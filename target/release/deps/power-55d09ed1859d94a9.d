/root/repo/target/release/deps/power-55d09ed1859d94a9.d: crates/bench/src/bin/power.rs Cargo.toml

/root/repo/target/release/deps/libpower-55d09ed1859d94a9.rmeta: crates/bench/src/bin/power.rs Cargo.toml

crates/bench/src/bin/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
