/root/repo/target/release/deps/cad_bench-c3ca4fbae704abe2.d: crates/bench/benches/cad_bench.rs Cargo.toml

/root/repo/target/release/deps/libcad_bench-c3ca4fbae704abe2.rmeta: crates/bench/benches/cad_bench.rs Cargo.toml

crates/bench/benches/cad_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
