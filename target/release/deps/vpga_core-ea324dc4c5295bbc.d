/root/repo/target/release/deps/vpga_core-ea324dc4c5295bbc.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/release/deps/libvpga_core-ea324dc4c5295bbc.rlib: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/release/deps/libvpga_core-ea324dc4c5295bbc.rmeta: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/config.rs:
crates/core/src/matcher.rs:
crates/core/src/params.rs:
crates/core/src/plb.rs:
