/root/repo/target/release/deps/ablate_granularity-ac12bc454defef45.d: crates/bench/src/bin/ablate_granularity.rs

/root/repo/target/release/deps/ablate_granularity-ac12bc454defef45: crates/bench/src/bin/ablate_granularity.rs

crates/bench/src/bin/ablate_granularity.rs:
