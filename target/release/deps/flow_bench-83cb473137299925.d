/root/repo/target/release/deps/flow_bench-83cb473137299925.d: crates/bench/benches/flow_bench.rs

/root/repo/target/release/deps/flow_bench-83cb473137299925: crates/bench/benches/flow_bench.rs

crates/bench/benches/flow_bench.rs:
