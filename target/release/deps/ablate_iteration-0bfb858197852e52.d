/root/repo/target/release/deps/ablate_iteration-0bfb858197852e52.d: crates/bench/src/bin/ablate_iteration.rs

/root/repo/target/release/deps/ablate_iteration-0bfb858197852e52: crates/bench/src/bin/ablate_iteration.rs

crates/bench/src/bin/ablate_iteration.rs:
