/root/repo/target/release/deps/vpga_synth-a7461abd785e7614.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs Cargo.toml

/root/repo/target/release/deps/libvpga_synth-a7461abd785e7614.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/error.rs:
crates/synth/src/map.rs:
crates/synth/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
