/root/repo/target/release/deps/vpga_flow-097aaffd697c6f45.d: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/release/deps/vpga_flow-097aaffd697c6f45: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

crates/flow/src/lib.rs:
crates/flow/src/exec.rs:
crates/flow/src/pipeline.rs:
crates/flow/src/report.rs:
crates/flow/src/stats.rs:
