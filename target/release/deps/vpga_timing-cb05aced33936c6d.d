/root/repo/target/release/deps/vpga_timing-cb05aced33936c6d.d: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/release/deps/libvpga_timing-cb05aced33936c6d.rlib: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/release/deps/libvpga_timing-cb05aced33936c6d.rmeta: crates/timing/src/lib.rs crates/timing/src/power.rs

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
