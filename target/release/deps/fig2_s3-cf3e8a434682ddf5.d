/root/repo/target/release/deps/fig2_s3-cf3e8a434682ddf5.d: crates/bench/src/bin/fig2_s3.rs

/root/repo/target/release/deps/fig2_s3-cf3e8a434682ddf5: crates/bench/src/bin/fig2_s3.rs

crates/bench/src/bin/fig2_s3.rs:
