/root/repo/target/release/deps/flow_integration-304ff4912d19899e.d: tests/flow_integration.rs

/root/repo/target/release/deps/flow_integration-304ff4912d19899e: tests/flow_integration.rs

tests/flow_integration.rs:
