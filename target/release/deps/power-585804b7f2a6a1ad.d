/root/repo/target/release/deps/power-585804b7f2a6a1ad.d: crates/bench/src/bin/power.rs Cargo.toml

/root/repo/target/release/deps/libpower-585804b7f2a6a1ad.rmeta: crates/bench/src/bin/power.rs Cargo.toml

crates/bench/src/bin/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
