/root/repo/target/release/deps/ablate_homogeneous-906d28a8e7adbbcf.d: crates/bench/src/bin/ablate_homogeneous.rs

/root/repo/target/release/deps/ablate_homogeneous-906d28a8e7adbbcf: crates/bench/src/bin/ablate_homogeneous.rs

crates/bench/src/bin/ablate_homogeneous.rs:
