/root/repo/target/release/deps/vpga_timing-fd86cbc7257a377b.d: crates/timing/src/lib.rs crates/timing/src/power.rs

/root/repo/target/release/deps/vpga_timing-fd86cbc7257a377b: crates/timing/src/lib.rs crates/timing/src/power.rs

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
