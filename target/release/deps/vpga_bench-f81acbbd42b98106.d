/root/repo/target/release/deps/vpga_bench-f81acbbd42b98106.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga_bench-f81acbbd42b98106.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
