/root/repo/target/release/deps/table1-ebfd0dd35e64fac8.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ebfd0dd35e64fac8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
