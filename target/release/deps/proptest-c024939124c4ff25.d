/root/repo/target/release/deps/proptest-c024939124c4ff25.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/release/deps/libproptest-c024939124c4ff25.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
