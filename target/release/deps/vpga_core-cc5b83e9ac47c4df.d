/root/repo/target/release/deps/vpga_core-cc5b83e9ac47c4df.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs Cargo.toml

/root/repo/target/release/deps/libvpga_core-cc5b83e9ac47c4df.rmeta: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/config.rs:
crates/core/src/matcher.rs:
crates/core/src/params.rs:
crates/core/src/plb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
