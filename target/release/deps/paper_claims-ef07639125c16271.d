/root/repo/target/release/deps/paper_claims-ef07639125c16271.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-ef07639125c16271: tests/paper_claims.rs

tests/paper_claims.rs:
