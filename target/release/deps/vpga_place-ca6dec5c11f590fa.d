/root/repo/target/release/deps/vpga_place-ca6dec5c11f590fa.d: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/release/deps/vpga_place-ca6dec5c11f590fa: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

crates/place/src/lib.rs:
crates/place/src/anneal.rs:
crates/place/src/buffers.rs:
crates/place/src/grid.rs:
