/root/repo/target/release/deps/compaction-4b4516e11dbfa43f.d: crates/bench/src/bin/compaction.rs

/root/repo/target/release/deps/compaction-4b4516e11dbfa43f: crates/bench/src/bin/compaction.rs

crates/bench/src/bin/compaction.rs:
