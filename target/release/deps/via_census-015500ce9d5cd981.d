/root/repo/target/release/deps/via_census-015500ce9d5cd981.d: crates/bench/src/bin/via_census.rs

/root/repo/target/release/deps/via_census-015500ce9d5cd981: crates/bench/src/bin/via_census.rs

crates/bench/src/bin/via_census.rs:
