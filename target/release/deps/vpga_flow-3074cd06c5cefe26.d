/root/repo/target/release/deps/vpga_flow-3074cd06c5cefe26.d: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/release/deps/libvpga_flow-3074cd06c5cefe26.rlib: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

/root/repo/target/release/deps/libvpga_flow-3074cd06c5cefe26.rmeta: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs

crates/flow/src/lib.rs:
crates/flow/src/exec.rs:
crates/flow/src/pipeline.rs:
crates/flow/src/report.rs:
crates/flow/src/stats.rs:
