/root/repo/target/release/deps/proptest-07be15b614f5d5c7.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/release/deps/libproptest-07be15b614f5d5c7.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
