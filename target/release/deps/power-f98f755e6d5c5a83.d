/root/repo/target/release/deps/power-f98f755e6d5c5a83.d: crates/bench/src/bin/power.rs

/root/repo/target/release/deps/power-f98f755e6d5c5a83: crates/bench/src/bin/power.rs

crates/bench/src/bin/power.rs:
