/root/repo/target/release/deps/ablate_ff_ratio-8e2faa18f7dec29d.d: crates/bench/src/bin/ablate_ff_ratio.rs Cargo.toml

/root/repo/target/release/deps/libablate_ff_ratio-8e2faa18f7dec29d.rmeta: crates/bench/src/bin/ablate_ff_ratio.rs Cargo.toml

crates/bench/src/bin/ablate_ff_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
