/root/repo/target/release/deps/vpga_pack-f4449833c630d370.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs Cargo.toml

/root/repo/target/release/deps/libvpga_pack-f4449833c630d370.rmeta: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs Cargo.toml

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
