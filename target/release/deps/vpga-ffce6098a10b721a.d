/root/repo/target/release/deps/vpga-ffce6098a10b721a.d: src/lib.rs

/root/repo/target/release/deps/vpga-ffce6098a10b721a: src/lib.rs

src/lib.rs:
