/root/repo/target/release/deps/experiments_golden-1889b90f1acd365b.d: tests/experiments_golden.rs

/root/repo/target/release/deps/experiments_golden-1889b90f1acd365b: tests/experiments_golden.rs

tests/experiments_golden.rs:
