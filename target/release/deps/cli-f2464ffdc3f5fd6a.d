/root/repo/target/release/deps/cli-f2464ffdc3f5fd6a.d: tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-f2464ffdc3f5fd6a.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_vpga=placeholder:vpga
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
