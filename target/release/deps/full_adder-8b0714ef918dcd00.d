/root/repo/target/release/deps/full_adder-8b0714ef918dcd00.d: crates/bench/src/bin/full_adder.rs

/root/repo/target/release/deps/full_adder-8b0714ef918dcd00: crates/bench/src/bin/full_adder.rs

crates/bench/src/bin/full_adder.rs:
