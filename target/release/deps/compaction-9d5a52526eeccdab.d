/root/repo/target/release/deps/compaction-9d5a52526eeccdab.d: crates/bench/src/bin/compaction.rs

/root/repo/target/release/deps/compaction-9d5a52526eeccdab: crates/bench/src/bin/compaction.rs

crates/bench/src/bin/compaction.rs:
