/root/repo/target/release/deps/power-08d1766d6f399b17.d: crates/bench/src/bin/power.rs

/root/repo/target/release/deps/power-08d1766d6f399b17: crates/bench/src/bin/power.rs

crates/bench/src/bin/power.rs:
