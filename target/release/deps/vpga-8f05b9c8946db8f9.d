/root/repo/target/release/deps/vpga-8f05b9c8946db8f9.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga-8f05b9c8946db8f9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
