/root/repo/target/release/deps/vpga_flow-4c593fdd82dc4210.d: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libvpga_flow-4c593fdd82dc4210.rmeta: crates/flow/src/lib.rs crates/flow/src/exec.rs crates/flow/src/pipeline.rs crates/flow/src/report.rs crates/flow/src/stats.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/exec.rs:
crates/flow/src/pipeline.rs:
crates/flow/src/report.rs:
crates/flow/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
