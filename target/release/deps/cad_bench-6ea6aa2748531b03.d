/root/repo/target/release/deps/cad_bench-6ea6aa2748531b03.d: crates/bench/benches/cad_bench.rs

/root/repo/target/release/deps/cad_bench-6ea6aa2748531b03: crates/bench/benches/cad_bench.rs

crates/bench/benches/cad_bench.rs:
