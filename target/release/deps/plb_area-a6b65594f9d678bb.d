/root/repo/target/release/deps/plb_area-a6b65594f9d678bb.d: crates/bench/src/bin/plb_area.rs

/root/repo/target/release/deps/plb_area-a6b65594f9d678bb: crates/bench/src/bin/plb_area.rs

crates/bench/src/bin/plb_area.rs:
