/root/repo/target/release/deps/vpga_netlist-1c60e22a7f75febf.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libvpga_netlist-1c60e22a7f75febf.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/io.rs:
crates/netlist/src/library.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
