/root/repo/target/release/deps/vpga_synth-8d679acd8ca0dcad.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

/root/repo/target/release/deps/vpga_synth-8d679acd8ca0dcad: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/error.rs crates/synth/src/map.rs crates/synth/src/rewrite.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/error.rs:
crates/synth/src/map.rs:
crates/synth/src/rewrite.rs:
