/root/repo/target/release/deps/kernel_bench-86398579722d6712.d: crates/bench/benches/kernel_bench.rs

/root/repo/target/release/deps/kernel_bench-86398579722d6712: crates/bench/benches/kernel_bench.rs

crates/bench/benches/kernel_bench.rs:
