/root/repo/target/release/deps/vpga_fabric-fd5d526aa0743479.d: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/release/deps/vpga_fabric-fd5d526aa0743479: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

crates/fabric/src/lib.rs:
crates/fabric/src/program.rs:
crates/fabric/src/via.rs:
