/root/repo/target/release/deps/vpga_place-d8405f3b1c5b39e0.d: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/release/deps/libvpga_place-d8405f3b1c5b39e0.rlib: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

/root/repo/target/release/deps/libvpga_place-d8405f3b1c5b39e0.rmeta: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs

crates/place/src/lib.rs:
crates/place/src/anneal.rs:
crates/place/src/buffers.rs:
crates/place/src/grid.rs:
