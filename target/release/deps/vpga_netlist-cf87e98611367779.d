/root/repo/target/release/deps/vpga_netlist-cf87e98611367779.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs

/root/repo/target/release/deps/libvpga_netlist-cf87e98611367779.rlib: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs

/root/repo/target/release/deps/libvpga_netlist-cf87e98611367779.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/ids.rs crates/netlist/src/io.rs crates/netlist/src/library.rs crates/netlist/src/netlist.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/io.rs:
crates/netlist/src/library.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/stats.rs:
