/root/repo/target/release/deps/ablate_packing-e32edd07d2ebfec9.d: crates/bench/src/bin/ablate_packing.rs Cargo.toml

/root/repo/target/release/deps/libablate_packing-e32edd07d2ebfec9.rmeta: crates/bench/src/bin/ablate_packing.rs Cargo.toml

crates/bench/src/bin/ablate_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
