/root/repo/target/release/deps/vpga_timing-d8c5ec37ef6bdea5.d: crates/timing/src/lib.rs crates/timing/src/power.rs Cargo.toml

/root/repo/target/release/deps/libvpga_timing-d8c5ec37ef6bdea5.rmeta: crates/timing/src/lib.rs crates/timing/src/power.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
