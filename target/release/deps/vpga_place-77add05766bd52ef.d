/root/repo/target/release/deps/vpga_place-77add05766bd52ef.d: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs Cargo.toml

/root/repo/target/release/deps/libvpga_place-77add05766bd52ef.rmeta: crates/place/src/lib.rs crates/place/src/anneal.rs crates/place/src/buffers.rs crates/place/src/grid.rs Cargo.toml

crates/place/src/lib.rs:
crates/place/src/anneal.rs:
crates/place/src/buffers.rs:
crates/place/src/grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
