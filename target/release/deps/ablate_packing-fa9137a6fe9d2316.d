/root/repo/target/release/deps/ablate_packing-fa9137a6fe9d2316.d: crates/bench/src/bin/ablate_packing.rs Cargo.toml

/root/repo/target/release/deps/libablate_packing-fa9137a6fe9d2316.rmeta: crates/bench/src/bin/ablate_packing.rs Cargo.toml

crates/bench/src/bin/ablate_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
