/root/repo/target/release/deps/experiments_golden-45c2ae423503926f.d: tests/experiments_golden.rs Cargo.toml

/root/repo/target/release/deps/libexperiments_golden-45c2ae423503926f.rmeta: tests/experiments_golden.rs Cargo.toml

tests/experiments_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
