/root/repo/target/release/deps/vpga_fabric-41865a8ccc10119b.d: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/release/deps/libvpga_fabric-41865a8ccc10119b.rlib: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

/root/repo/target/release/deps/libvpga_fabric-41865a8ccc10119b.rmeta: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs

crates/fabric/src/lib.rs:
crates/fabric/src/program.rs:
crates/fabric/src/via.rs:
