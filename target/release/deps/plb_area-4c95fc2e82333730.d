/root/repo/target/release/deps/plb_area-4c95fc2e82333730.d: crates/bench/src/bin/plb_area.rs

/root/repo/target/release/deps/plb_area-4c95fc2e82333730: crates/bench/src/bin/plb_area.rs

crates/bench/src/bin/plb_area.rs:
