/root/repo/target/release/deps/proptest-a257f6de9d341767.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a257f6de9d341767.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a257f6de9d341767.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
