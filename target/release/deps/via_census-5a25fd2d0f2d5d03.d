/root/repo/target/release/deps/via_census-5a25fd2d0f2d5d03.d: crates/bench/src/bin/via_census.rs Cargo.toml

/root/repo/target/release/deps/libvia_census-5a25fd2d0f2d5d03.rmeta: crates/bench/src/bin/via_census.rs Cargo.toml

crates/bench/src/bin/via_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
