/root/repo/target/release/deps/fig2_s3-99f0660927bdc845.d: crates/bench/src/bin/fig2_s3.rs

/root/repo/target/release/deps/fig2_s3-99f0660927bdc845: crates/bench/src/bin/fig2_s3.rs

crates/bench/src/bin/fig2_s3.rs:
