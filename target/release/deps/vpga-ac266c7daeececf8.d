/root/repo/target/release/deps/vpga-ac266c7daeececf8.d: src/bin/vpga.rs Cargo.toml

/root/repo/target/release/deps/libvpga-ac266c7daeececf8.rmeta: src/bin/vpga.rs Cargo.toml

src/bin/vpga.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
