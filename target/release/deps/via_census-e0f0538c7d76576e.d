/root/repo/target/release/deps/via_census-e0f0538c7d76576e.d: crates/bench/src/bin/via_census.rs

/root/repo/target/release/deps/via_census-e0f0538c7d76576e: crates/bench/src/bin/via_census.rs

crates/bench/src/bin/via_census.rs:
