/root/repo/target/release/deps/vpga-3978f6ab2a062b18.d: src/bin/vpga.rs

/root/repo/target/release/deps/vpga-3978f6ab2a062b18: src/bin/vpga.rs

src/bin/vpga.rs:
