/root/repo/target/release/deps/flow_integration-5719595c44264d5d.d: tests/flow_integration.rs Cargo.toml

/root/repo/target/release/deps/libflow_integration-5719595c44264d5d.rmeta: tests/flow_integration.rs Cargo.toml

tests/flow_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
