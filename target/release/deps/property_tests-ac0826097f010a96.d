/root/repo/target/release/deps/property_tests-ac0826097f010a96.d: tests/property_tests.rs Cargo.toml

/root/repo/target/release/deps/libproperty_tests-ac0826097f010a96.rmeta: tests/property_tests.rs Cargo.toml

tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
