/root/repo/target/release/deps/proptest-69707b1101e9bd94.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/proptest-69707b1101e9bd94: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
