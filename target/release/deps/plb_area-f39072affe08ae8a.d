/root/repo/target/release/deps/plb_area-f39072affe08ae8a.d: crates/bench/src/bin/plb_area.rs Cargo.toml

/root/repo/target/release/deps/libplb_area-f39072affe08ae8a.rmeta: crates/bench/src/bin/plb_area.rs Cargo.toml

crates/bench/src/bin/plb_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
