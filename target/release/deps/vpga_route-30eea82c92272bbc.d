/root/repo/target/release/deps/vpga_route-30eea82c92272bbc.d: crates/route/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libvpga_route-30eea82c92272bbc.rmeta: crates/route/src/lib.rs Cargo.toml

crates/route/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
