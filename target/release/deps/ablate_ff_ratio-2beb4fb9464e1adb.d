/root/repo/target/release/deps/ablate_ff_ratio-2beb4fb9464e1adb.d: crates/bench/src/bin/ablate_ff_ratio.rs

/root/repo/target/release/deps/ablate_ff_ratio-2beb4fb9464e1adb: crates/bench/src/bin/ablate_ff_ratio.rs

crates/bench/src/bin/ablate_ff_ratio.rs:
