/root/repo/target/release/deps/vpga_logic-4ad092e57a90e5ae.d: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs Cargo.toml

/root/repo/target/release/deps/libvpga_logic-4ad092e57a90e5ae.rmeta: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs Cargo.toml

crates/logic/src/lib.rs:
crates/logic/src/adder.rs:
crates/logic/src/cells.rs:
crates/logic/src/error.rs:
crates/logic/src/lut.rs:
crates/logic/src/npn.rs:
crates/logic/src/s3.rs:
crates/logic/src/sets.rs:
crates/logic/src/tt.rs:
crates/logic/src/tt3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
