/root/repo/target/release/deps/vpga_route-91abfff0966def9c.d: crates/route/src/lib.rs

/root/repo/target/release/deps/vpga_route-91abfff0966def9c: crates/route/src/lib.rs

crates/route/src/lib.rs:
