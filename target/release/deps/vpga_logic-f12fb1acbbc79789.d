/root/repo/target/release/deps/vpga_logic-f12fb1acbbc79789.d: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs

/root/repo/target/release/deps/vpga_logic-f12fb1acbbc79789: crates/logic/src/lib.rs crates/logic/src/adder.rs crates/logic/src/cells.rs crates/logic/src/error.rs crates/logic/src/lut.rs crates/logic/src/npn.rs crates/logic/src/s3.rs crates/logic/src/sets.rs crates/logic/src/tt.rs crates/logic/src/tt3.rs

crates/logic/src/lib.rs:
crates/logic/src/adder.rs:
crates/logic/src/cells.rs:
crates/logic/src/error.rs:
crates/logic/src/lut.rs:
crates/logic/src/npn.rs:
crates/logic/src/s3.rs:
crates/logic/src/sets.rs:
crates/logic/src/tt.rs:
crates/logic/src/tt3.rs:
