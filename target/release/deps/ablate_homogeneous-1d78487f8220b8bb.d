/root/repo/target/release/deps/ablate_homogeneous-1d78487f8220b8bb.d: crates/bench/src/bin/ablate_homogeneous.rs Cargo.toml

/root/repo/target/release/deps/libablate_homogeneous-1d78487f8220b8bb.rmeta: crates/bench/src/bin/ablate_homogeneous.rs Cargo.toml

crates/bench/src/bin/ablate_homogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
