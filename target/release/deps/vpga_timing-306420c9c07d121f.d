/root/repo/target/release/deps/vpga_timing-306420c9c07d121f.d: crates/timing/src/lib.rs crates/timing/src/power.rs Cargo.toml

/root/repo/target/release/deps/libvpga_timing-306420c9c07d121f.rmeta: crates/timing/src/lib.rs crates/timing/src/power.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
