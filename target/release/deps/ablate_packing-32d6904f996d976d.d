/root/repo/target/release/deps/ablate_packing-32d6904f996d976d.d: crates/bench/src/bin/ablate_packing.rs

/root/repo/target/release/deps/ablate_packing-32d6904f996d976d: crates/bench/src/bin/ablate_packing.rs

crates/bench/src/bin/ablate_packing.rs:
