/root/repo/target/release/deps/vpga-ee1207a47f0a310c.d: src/lib.rs

/root/repo/target/release/deps/libvpga-ee1207a47f0a310c.rlib: src/lib.rs

/root/repo/target/release/deps/libvpga-ee1207a47f0a310c.rmeta: src/lib.rs

src/lib.rs:
