/root/repo/target/release/deps/ablate_granularity-b9eb528d2033b1ba.d: crates/bench/src/bin/ablate_granularity.rs Cargo.toml

/root/repo/target/release/deps/libablate_granularity-b9eb528d2033b1ba.rmeta: crates/bench/src/bin/ablate_granularity.rs Cargo.toml

crates/bench/src/bin/ablate_granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
