/root/repo/target/release/deps/ablate_iteration-ce02c8da56c6021f.d: crates/bench/src/bin/ablate_iteration.rs Cargo.toml

/root/repo/target/release/deps/libablate_iteration-ce02c8da56c6021f.rmeta: crates/bench/src/bin/ablate_iteration.rs Cargo.toml

crates/bench/src/bin/ablate_iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
