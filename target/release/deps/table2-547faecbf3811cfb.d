/root/repo/target/release/deps/table2-547faecbf3811cfb.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-547faecbf3811cfb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
