/root/repo/target/release/deps/vpga_fabric-5e97fa72edf0aa9f.d: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs Cargo.toml

/root/repo/target/release/deps/libvpga_fabric-5e97fa72edf0aa9f.rmeta: crates/fabric/src/lib.rs crates/fabric/src/program.rs crates/fabric/src/via.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/program.rs:
crates/fabric/src/via.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
