/root/repo/target/release/deps/vpga_pack-5ca4369e733e57ca.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/release/deps/libvpga_pack-5ca4369e733e57ca.rlib: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

/root/repo/target/release/deps/libvpga_pack-5ca4369e733e57ca.rmeta: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
