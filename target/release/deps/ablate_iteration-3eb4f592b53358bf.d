/root/repo/target/release/deps/ablate_iteration-3eb4f592b53358bf.d: crates/bench/src/bin/ablate_iteration.rs

/root/repo/target/release/deps/ablate_iteration-3eb4f592b53358bf: crates/bench/src/bin/ablate_iteration.rs

crates/bench/src/bin/ablate_iteration.rs:
