/root/repo/target/release/deps/compaction-d2aade1131278af3.d: crates/bench/src/bin/compaction.rs Cargo.toml

/root/repo/target/release/deps/libcompaction-d2aade1131278af3.rmeta: crates/bench/src/bin/compaction.rs Cargo.toml

crates/bench/src/bin/compaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
