/root/repo/target/release/deps/ablate_granularity-f542d678cc4a1621.d: crates/bench/src/bin/ablate_granularity.rs

/root/repo/target/release/deps/ablate_granularity-f542d678cc4a1621: crates/bench/src/bin/ablate_granularity.rs

crates/bench/src/bin/ablate_granularity.rs:
