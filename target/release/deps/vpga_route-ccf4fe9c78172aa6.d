/root/repo/target/release/deps/vpga_route-ccf4fe9c78172aa6.d: crates/route/src/lib.rs

/root/repo/target/release/deps/libvpga_route-ccf4fe9c78172aa6.rlib: crates/route/src/lib.rs

/root/repo/target/release/deps/libvpga_route-ccf4fe9c78172aa6.rmeta: crates/route/src/lib.rs

crates/route/src/lib.rs:
