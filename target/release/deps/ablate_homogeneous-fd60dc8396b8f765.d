/root/repo/target/release/deps/ablate_homogeneous-fd60dc8396b8f765.d: crates/bench/src/bin/ablate_homogeneous.rs Cargo.toml

/root/repo/target/release/deps/libablate_homogeneous-fd60dc8396b8f765.rmeta: crates/bench/src/bin/ablate_homogeneous.rs Cargo.toml

crates/bench/src/bin/ablate_homogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
