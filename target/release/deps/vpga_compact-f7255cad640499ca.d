/root/repo/target/release/deps/vpga_compact-f7255cad640499ca.d: crates/compact/src/lib.rs

/root/repo/target/release/deps/vpga_compact-f7255cad640499ca: crates/compact/src/lib.rs

crates/compact/src/lib.rs:
