/root/repo/target/release/deps/vpga_bench-534fe0b462ae9cb1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/vpga_bench-534fe0b462ae9cb1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
