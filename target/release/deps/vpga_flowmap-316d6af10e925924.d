/root/repo/target/release/deps/vpga_flowmap-316d6af10e925924.d: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/release/deps/vpga_flowmap-316d6af10e925924: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

crates/flowmap/src/lib.rs:
crates/flowmap/src/dag.rs:
crates/flowmap/src/flow.rs:
crates/flowmap/src/label.rs:
