/root/repo/target/release/deps/flow_bench-ce90f3648940fe68.d: crates/bench/benches/flow_bench.rs Cargo.toml

/root/repo/target/release/deps/libflow_bench-ce90f3648940fe68.rmeta: crates/bench/benches/flow_bench.rs Cargo.toml

crates/bench/benches/flow_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
