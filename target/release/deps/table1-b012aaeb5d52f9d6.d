/root/repo/target/release/deps/table1-b012aaeb5d52f9d6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b012aaeb5d52f9d6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
