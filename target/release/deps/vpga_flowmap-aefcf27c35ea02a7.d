/root/repo/target/release/deps/vpga_flowmap-aefcf27c35ea02a7.d: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs Cargo.toml

/root/repo/target/release/deps/libvpga_flowmap-aefcf27c35ea02a7.rmeta: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs Cargo.toml

crates/flowmap/src/lib.rs:
crates/flowmap/src/dag.rs:
crates/flowmap/src/flow.rs:
crates/flowmap/src/label.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
