/root/repo/target/release/deps/vpga_bench-ebee13a4cbf06879.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvpga_bench-ebee13a4cbf06879.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvpga_bench-ebee13a4cbf06879.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
