/root/repo/target/release/deps/vpga_designs-4f4a74b3dc382c53.d: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

/root/repo/target/release/deps/vpga_designs-4f4a74b3dc382c53: crates/designs/src/lib.rs crates/designs/src/arith.rs crates/designs/src/blocks.rs crates/designs/src/designer.rs crates/designs/src/designs.rs

crates/designs/src/lib.rs:
crates/designs/src/arith.rs:
crates/designs/src/blocks.rs:
crates/designs/src/designer.rs:
crates/designs/src/designs.rs:
