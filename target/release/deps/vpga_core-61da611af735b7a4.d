/root/repo/target/release/deps/vpga_core-61da611af735b7a4.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

/root/repo/target/release/deps/vpga_core-61da611af735b7a4: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/config.rs crates/core/src/matcher.rs crates/core/src/params.rs crates/core/src/plb.rs

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/config.rs:
crates/core/src/matcher.rs:
crates/core/src/params.rs:
crates/core/src/plb.rs:
