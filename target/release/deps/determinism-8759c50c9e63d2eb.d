/root/repo/target/release/deps/determinism-8759c50c9e63d2eb.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-8759c50c9e63d2eb: tests/determinism.rs

tests/determinism.rs:
