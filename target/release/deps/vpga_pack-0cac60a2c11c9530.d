/root/repo/target/release/deps/vpga_pack-0cac60a2c11c9530.d: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs Cargo.toml

/root/repo/target/release/deps/libvpga_pack-0cac60a2c11c9530.rmeta: crates/pack/src/lib.rs crates/pack/src/array.rs crates/pack/src/quadrisect.rs crates/pack/src/swap.rs Cargo.toml

crates/pack/src/lib.rs:
crates/pack/src/array.rs:
crates/pack/src/quadrisect.rs:
crates/pack/src/swap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
