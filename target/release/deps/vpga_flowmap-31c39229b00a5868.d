/root/repo/target/release/deps/vpga_flowmap-31c39229b00a5868.d: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/release/deps/libvpga_flowmap-31c39229b00a5868.rlib: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

/root/repo/target/release/deps/libvpga_flowmap-31c39229b00a5868.rmeta: crates/flowmap/src/lib.rs crates/flowmap/src/dag.rs crates/flowmap/src/flow.rs crates/flowmap/src/label.rs

crates/flowmap/src/lib.rs:
crates/flowmap/src/dag.rs:
crates/flowmap/src/flow.rs:
crates/flowmap/src/label.rs:
