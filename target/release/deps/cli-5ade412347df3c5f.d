/root/repo/target/release/deps/cli-5ade412347df3c5f.d: tests/cli.rs

/root/repo/target/release/deps/cli-5ade412347df3c5f: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_vpga=/root/repo/target/release/vpga
