/root/repo/target/release/deps/ablate_packing-89a4b3af43be9ab3.d: crates/bench/src/bin/ablate_packing.rs

/root/repo/target/release/deps/ablate_packing-89a4b3af43be9ab3: crates/bench/src/bin/ablate_packing.rs

crates/bench/src/bin/ablate_packing.rs:
