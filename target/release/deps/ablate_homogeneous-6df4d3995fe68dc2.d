/root/repo/target/release/deps/ablate_homogeneous-6df4d3995fe68dc2.d: crates/bench/src/bin/ablate_homogeneous.rs

/root/repo/target/release/deps/ablate_homogeneous-6df4d3995fe68dc2: crates/bench/src/bin/ablate_homogeneous.rs

crates/bench/src/bin/ablate_homogeneous.rs:
