/root/repo/target/release/deps/via_census-093e2bdcaa0f96ae.d: crates/bench/src/bin/via_census.rs Cargo.toml

/root/repo/target/release/deps/libvia_census-093e2bdcaa0f96ae.rmeta: crates/bench/src/bin/via_census.rs Cargo.toml

crates/bench/src/bin/via_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
