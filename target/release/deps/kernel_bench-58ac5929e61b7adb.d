/root/repo/target/release/deps/kernel_bench-58ac5929e61b7adb.d: crates/bench/benches/kernel_bench.rs Cargo.toml

/root/repo/target/release/deps/libkernel_bench-58ac5929e61b7adb.rmeta: crates/bench/benches/kernel_bench.rs Cargo.toml

crates/bench/benches/kernel_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
