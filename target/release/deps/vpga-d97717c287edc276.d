/root/repo/target/release/deps/vpga-d97717c287edc276.d: src/bin/vpga.rs

/root/repo/target/release/deps/vpga-d97717c287edc276: src/bin/vpga.rs

src/bin/vpga.rs:
