#!/usr/bin/env bash
# Offline CI gate for the VPGA workspace.
#
# Runs the same checks a PR must pass, in order of increasing cost:
#   1. cargo fmt --check          (formatting)
#   2. cargo clippy -D warnings   (lints; skipped if clippy is not installed)
#   3. cargo build --release      (whole workspace, all targets)
#   4. cargo test                 (whole workspace)
#
# The workspace has no network dependencies: rand/proptest/criterion are
# vendored as path crates under vendor/, so every step works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets --release -- -D warnings
else
    step "clippy not installed; skipping lint step"
fi

step "cargo build --release --workspace"
cargo build --release --workspace --all-targets

step "cargo test --workspace"
cargo test --workspace -q

printf '\nall checks passed\n'
