#!/usr/bin/env bash
# Offline CI gate for the VPGA workspace.
#
# Runs the same checks a PR must pass, in order of increasing cost:
#   1. tracked-artifact guard     (nothing under target/ in the index)
#   2. cargo fmt --check          (formatting)
#   3. cargo clippy -D warnings   (lints; skipped if clippy is not installed)
#   4. cargo build --release      (whole workspace, all targets)
#   5. cargo test                 (whole workspace)
#   6. cargo test --features fault-inject   (fault-injection harness)
#   7. audited tiny matrix        (debug assertions + inter-stage auditors)
#   8. kill-and-resume smoke      (interrupted checkpointed matrix resumes bit-identical)
#   9. interchange round-trip     (SDF/.vxdl emission verifies + checkpoints migrate)
#  10. parallel determinism smoke (--stage-threads 2 fingerprint == serial;
#      a paper-scale variant runs when VPGA_PAPER_SMOKE=1)
#  11. cargo bench, smoke mode    (one sample per bench, catches bit-rot)
#
# The workspace has no network dependencies: rand/proptest/criterion are
# vendored as path crates under vendor/, so every step works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s\n' "$*"; }

step "no build artifacts tracked"
if git ls-files -- target/ | grep -q .; then
    echo "error: build artifacts are tracked under target/ — run: git rm -r --cached target/" >&2
    git ls-files -- target/ | head >&2
    exit 1
fi

step "cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets --release -- -D warnings
    # The stage graph (flow/src/stages/), checkpoint code, and the serve
    # daemon gate extra paths behind fault-inject; lint them with the
    # feature on too.
    step "cargo clippy -p vpga -p vpga-flow -p vpga-serve --features fault-inject -- -D warnings"
    cargo clippy -p vpga -p vpga-flow -p vpga-serve --all-targets --features fault-inject --release -- -D warnings
else
    step "clippy not installed; skipping lint step"
fi

step "cargo build --release --workspace"
cargo build --release --workspace --all-targets

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test --features fault-inject (fault-injection harness)"
cargo test --features fault-inject -q

step "audited matrix run (debug assertions + inter-stage auditors)"
# The fingerprint folds the pack/swap mover counters, so this also pins
# the incremental back-end (dirty-region repack, delta-cost swap) to the
# published golden bit-for-bit.
golden="matrix fingerprint: 0xd516b48daf413258"
audited=$(cargo run -q --bin vpga -- matrix --size tiny --jobs 2 --audit \
    | grep '^matrix fingerprint:')
if [ "$audited" != "$golden" ]; then
    echo "error: audited matrix diverged from the golden: '$audited' != '$golden'" >&2
    exit 1
fi

step "kill-and-resume smoke (interrupted checkpointed matrix resumes bit-identical)"
CKPT=$(mktemp -d)
trap 'rm -rf "$CKPT"' EXIT
baseline=$(cargo run -q --bin vpga -- matrix --size tiny --jobs 2 \
    | grep '^matrix fingerprint:')
# Interrupt: an injected panic kills one cell mid-matrix while every
# completed stage persists to the checkpoint directory...
if VPGA_FAULT="route@alu/granular/a=panic" \
    cargo run -q --features fault-inject --bin vpga -- \
    matrix --size tiny --jobs 2 --checkpoint-dir "$CKPT" >/dev/null 2>&1; then
    echo "error: fault-injected matrix run unexpectedly succeeded" >&2
    exit 1
fi
# ...and the resumed run must land on the uninterrupted fingerprint.
resumed=$(cargo run -q --features fault-inject --bin vpga -- \
    matrix --size tiny --jobs 2 --checkpoint-dir "$CKPT" --resume \
    | grep '^matrix fingerprint:')
if [ "$baseline" != "$resumed" ]; then
    echo "error: resumed matrix diverged: '$resumed' != '$baseline'" >&2
    exit 1
fi

step "interchange round-trip (emit SDF/.vxdl, verify fixpoints, migrate checkpoints)"
# Golden-file byte diffs already ran under `cargo test` (tests/goldens/);
# this exercises the full emit → reparse → re-emit path on fresh artifacts
# and the binary-checkpoint → .vxdl migration with fingerprint equality.
IVK=$(mktemp -d)
trap 'rm -rf "$CKPT" "$IVK"' EXIT
cargo run -q --bin vpga -- matrix --size tiny --jobs 2 \
    --checkpoint-dir "$IVK/ckpt" --emit-sdf "$IVK/sdf" --emit-xdl "$IVK/xdl" >/dev/null
cargo run -q --bin vpga -- verify-interchange "$IVK/sdf" >/dev/null
cargo run -q --bin vpga -- verify-interchange "$IVK/xdl" >/dev/null
cargo run -q --bin vpga -- migrate-checkpoints "$IVK/ckpt" --size tiny >/dev/null

step "parallel determinism smoke (tiny matrix, --stage-threads 2 vs 1)"
serial=$(cargo run -q --bin vpga -- matrix --size tiny --jobs 2 --stage-threads 1 \
    | grep '^matrix fingerprint:')
par=$(cargo run -q --bin vpga -- matrix --size tiny --jobs 2 --stage-threads 2 \
    | grep '^matrix fingerprint:')
if [ "$serial" != "$par" ]; then
    echo "error: --stage-threads 2 diverged from serial: '$par' != '$serial'" >&2
    exit 1
fi

# Paper-scale smoke: one granular network-switch cell through the full
# flow at 2 worker threads, asserted bit-identical to the serial run.
# Minutes of wall time, so it only runs when a nightly opts in with
# VPGA_PAPER_SMOKE=1.
if [ "${VPGA_PAPER_SMOKE:-0}" = "1" ]; then
    step "paper-scale parallel smoke (network_switch/granular, threads 2 vs 1)"
    p1=$(cargo run -q --release --bin vpga -- matrix --size paper \
        --only network_switch/granular --stage-threads 1 \
        | grep '^matrix fingerprint:')
    p2=$(cargo run -q --release --bin vpga -- matrix --size paper \
        --only network_switch/granular --stage-threads 2 \
        | grep '^matrix fingerprint:')
    if [ "$p1" != "$p2" ]; then
        echo "error: paper-scale --stage-threads 2 diverged: '$p2' != '$p1'" >&2
        exit 1
    fi
fi

step "serve smoke (cold/warm daemon matrix, golden fingerprint, SIGTERM drain)"
# The release binary is invoked directly (not through `cargo run`) so the
# SIGTERM below reaches the daemon itself, not a cargo wrapper.
VPGA_BIN=target/release/vpga
SRV=$(mktemp -d)
trap 'rm -rf "$CKPT" "$IVK" "$SRV"' EXIT
PORT=$((20000 + RANDOM % 20000))
"$VPGA_BIN" serve --listen "127.0.0.1:$PORT" --workers 2 \
    >"$SRV/summary.txt" 2>"$SRV/log.txt" &
SRVPID=$!
ready=0
for _ in $(seq 1 100); do
    if "$VPGA_BIN" submit "127.0.0.1:$PORT" /healthz >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ "$ready" != 1 ]; then
    echo "error: daemon never became ready on port $PORT" >&2
    cat "$SRV/log.txt" >&2
    exit 1
fi
golden="matrix fingerprint: 0xd516b48daf413258"
cold=$("$VPGA_BIN" submit "127.0.0.1:$PORT" "/matrix?params=tiny")
warm=$("$VPGA_BIN" submit "127.0.0.1:$PORT" "/matrix?params=tiny")
for run in cold warm; do
    fp=$(eval "printf '%s\n' \"\$$run\"" | grep '^matrix fingerprint:')
    if [ "$fp" != "$golden" ]; then
        echo "error: $run daemon matrix diverged: '$fp' != '$golden'" >&2
        exit 1
    fi
done
# The warm run must be served entirely from the artifact cache.
if ! printf '%s\n' "$warm" | grep -q '^cache hits=32/32$'; then
    echo "error: warm daemon matrix was not fully cache-hit:" >&2
    printf '%s\n' "$warm" | grep '^cache hits=' >&2
    exit 1
fi
kill -TERM "$SRVPID"
if ! wait "$SRVPID"; then
    echo "error: daemon did not drain cleanly on SIGTERM" >&2
    cat "$SRV/summary.txt" "$SRV/log.txt" >&2
    exit 1
fi
if ! grep -q '^drained: .*cache_valid=true' "$SRV/summary.txt"; then
    echo "error: drain summary missing or cache invalid:" >&2
    cat "$SRV/summary.txt" >&2
    exit 1
fi

step "serve load harness (release, 1000 mixed chaos jobs vs batch reference)"
"$VPGA_BIN" serve-bench --jobs 1000 --clients 8

step "cargo bench (smoke mode, 1 sample per bench)"
# --workspace picks up every [[bench]] target in crates/bench, including
# timing_bench (the incremental-STA baselines behind BENCH_timing.json).
CRITERION_SMOKE=1 cargo bench --workspace

printf '\nall checks passed\n'
