//! `vpga` — command-line front end to the VPGA implementation flow.
//!
//! ```text
//! vpga gen <alu|fpu|switch|firewire> [--size tiny|small|medium|paper] [-o design.v]
//! vpga flow <design.v> [--arch granular|lut|homogeneous] [--no-compaction] [--stats]
//!           [--audit] [--retries N] [--deadline SECS]
//! vpga matrix [--size tiny|small|medium|paper] [--jobs N] [--stats]
//!           [--stage-threads N] [--only DESIGN/ARCH]
//!           [--audit] [--retries N] [--deadline SECS]
//!           [--checkpoint-dir DIR] [--resume]
//!           [--emit-sdf DIR] [--emit-xdl DIR]
//! vpga program <design.v> [--arch granular|lut] [-o design.fabric]
//! vpga arch [granular|lut|homogeneous]
//! vpga verify-interchange <DIR>
//! vpga migrate-checkpoints <DIR> [--size S] [--no-compaction]
//! vpga serve [--listen ADDR] [--workers N] [--queue N] [--cache-mb N]
//!           [--checkpoint-dir DIR] [--chaos]
//! vpga submit <HOST:PORT> <PATH>
//! vpga serve-bench [--jobs N] [--clients N] [--cache-kb N] [--designs N]
//! ```
//!
//! `gen` writes a generated benchmark as structural Verilog over the
//! generic library; `flow` runs the full Figure 6 flow (both variants) on a
//! structural-Verilog design and prints the Table 1/2 metrics; `matrix`
//! runs the paper's full 4 designs × 2 architectures evaluation across a
//! worker pool (`--jobs 0` = all CPUs; results are bit-identical for any
//! worker count) and prints Tables 1–2 plus the §3.2 claims; `program`
//! additionally emits the via program of the packed array; `arch` prints an
//! architecture summary. `--stats` adds the per-stage instrumentation
//! (wall time, netlist sizes, cost movement, mover/acceptance counters).
//!
//! `--emit-sdf` / `--emit-xdl` write one SDF 3.0 timing file and/or one
//! `.vxdl` netlist/placement/routing file per back-end job after its
//! post-route STA; `verify-interchange` re-parses every artifact in a
//! directory and checks the round-trip fixpoints; `migrate-checkpoints`
//! exports each binary front-end checkpoint to its `.vxdl` text twin and
//! verifies the re-parsed snapshot fingerprint matches the binary's.

use std::error::Error;
use std::fs;
use std::process::ExitCode;

use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::report::Matrix;
use vpga::flow::{run_design, FlowConfig};
use vpga::netlist::library::generic;
use vpga::netlist::{io, Netlist};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = arm_faults_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(1);
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

/// Arms the fault-injection harness from `VPGA_FAULT`
/// (`point[@ctx]=panic|error|timeout[,...]`) when the binary is built with
/// the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
fn arm_faults_from_env() -> Result<(), String> {
    match std::env::var("VPGA_FAULT") {
        Ok(spec) => vpga::flow::faultpoint::arm_from_spec(&spec),
        Err(_) => Ok(()),
    }
}

#[cfg(not(feature = "fault-inject"))]
fn arm_faults_from_env() -> Result<(), String> {
    if std::env::var_os("VPGA_FAULT").is_some() {
        eprintln!("warning: VPGA_FAULT set but this build lacks the fault-inject feature");
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "gen" => cmd_gen(rest),
        "flow" => cmd_flow(rest),
        "matrix" => cmd_matrix(rest),
        "program" => cmd_program(rest),
        "arch" => cmd_arch(rest),
        "verify-interchange" => cmd_verify_interchange(rest),
        "migrate-checkpoints" => cmd_migrate_checkpoints(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "serve-bench" => cmd_serve_bench(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `vpga help`").into()),
    }
}

fn print_usage() {
    eprintln!(
        "vpga — Via-Patterned Gate Array implementation flow\n\n\
         usage:\n\
         \x20 vpga gen <alu|fpu|switch|firewire> [--size S] [-o FILE]   generate a benchmark as Verilog\n\
         \x20 vpga flow <design.v> [--arch A] [--no-compaction] [--stats]  run flows a and b, print metrics\n\
         \x20 vpga matrix [--size S] [--jobs N] [--stats] [--checkpoint-dir DIR] [--resume]\n\
         \x20                                                           run the full 4×2 evaluation matrix\n\
         \x20 vpga program <design.v> [--arch A] [-o FILE]              emit the packed via program\n\
         \x20 vpga arch [A]                                             print architecture summaries\n\n\
         sizes S: tiny | small | medium | paper (default small)\n\
         architectures A: granular | lut | homogeneous (default granular)\n\
         --jobs N: worker threads (0 = one per CPU; default 1) — results are\n\
         \x20         bit-identical for any N\n\
         --stage-threads N: worker threads *inside* the place/route kernels\n\
         \x20         (0 = one per CPU; default 1) — results are bit-identical for any N\n\
         --only F: (matrix) run only the cells whose design/arch contains F\n\
         --stats : print per-stage wall time, sizes, cost and move counters\n\n\
         robustness (flow and matrix):\n\
         --audit        : run the inter-stage invariant auditors (always on in debug builds)\n\
         --retries N    : retry stochastic stages up to N times with derived reseeds\n\
         --deadline SECS: per-job wall-clock budget; over-budget jobs fail cleanly\n\n\
         checkpointing (matrix only):\n\
         --checkpoint-dir DIR: persist per-stage artifacts to DIR as stages complete\n\
         --resume            : skip stages whose valid checkpoints are already in DIR;\n\
         \x20                    an interrupted-then-resumed matrix is bit-identical\n\n\
         interchange:\n\
         --emit-sdf DIR: write per-job SDF 3.0 timing files after post-route STA (matrix)\n\
         --emit-xdl DIR: write per-job .vxdl netlist/placement/routing files (matrix)\n\
         \x20 vpga verify-interchange <DIR>                     re-parse every .sdf/.vxdl in DIR,\n\
         \x20                                                   check round-trip fixpoints\n\
         \x20 vpga migrate-checkpoints <DIR> [--size S]         export front-end checkpoints to\n\
         \x20                                                   .vxdl and verify fingerprints\n\n\
         service:\n\
         \x20 vpga serve [--listen ADDR] [--workers N] [--queue N] [--cache-mb N]\n\
         \x20            [--checkpoint-dir DIR] [--chaos]        run the flow daemon (SIGTERM or\n\
         \x20                                                   /shutdown drains gracefully)\n\
         \x20 vpga submit <HOST:PORT> <PATH>                    GET a daemon endpoint, print the body\n\
         \x20                                                   (e.g. \"/job?design=alu&arch=granular&variant=a&params=tiny\")\n\
         \x20 vpga serve-bench [--jobs N] [--clients N] [--cache-kb N] [--designs N]\n\
         \x20                                                   load-test an in-process daemon against\n\
         \x20                                                   batch-mode reference fingerprints"
    );
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Applies the shared robustness flags (`--audit`, `--retries N`,
/// `--deadline SECS`) on top of `config`.
fn apply_robustness_flags(
    mut config: FlowConfig,
    args: &[String],
) -> Result<FlowConfig, Box<dyn Error>> {
    if args.iter().any(|a| a == "--audit") {
        config.audit = true;
    }
    if let Some(v) = flag_value(args, "--retries") {
        config.retries = v
            .parse()
            .map_err(|_| format!("bad --retries value {v:?}"))?;
    } else if args.iter().any(|a| a == "--retries") {
        return Err("--retries needs a value".into());
    }
    if let Some(v) = flag_value(args, "--deadline") {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("bad --deadline value {v:?}"))?;
        // 0 is legal and fails jobs fast before their first stage — the
        // admission-style "reject everything" budget.
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("--deadline must be non-negative, got {v}").into());
        }
        config.deadline = Some(std::time::Duration::from_secs_f64(secs));
    } else if args.iter().any(|a| a == "--deadline") {
        return Err("--deadline needs a value".into());
    }
    if let Some(v) = flag_value(args, "--stage-threads") {
        let n: usize = v
            .parse()
            .map_err(|_| format!("bad --stage-threads value {v:?}"))?;
        // 0 = one worker per CPU, like --jobs.
        config.stage_threads = if n == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            n
        };
    } else if args.iter().any(|a| a == "--stage-threads") {
        return Err("--stage-threads needs a value".into());
    }
    Ok(config)
}

fn parse_size(args: &[String]) -> Result<DesignParams, Box<dyn Error>> {
    let name = flag_value(args, "--size").unwrap_or("small");
    match name {
        "tiny" => Ok(DesignParams::tiny()),
        "small" => Ok(DesignParams::small()),
        "medium" => Ok(DesignParams {
            alu_width: 24,
            fpu_mantissa: 16,
            fpu_exponent: 6,
            fpu_lanes: 3,
            switch_ports: 8,
            switch_width: 16,
            firewire_scale: 3,
        }),
        "paper" => Ok(DesignParams::paper()),
        other => Err(format!("unknown size {other:?}").into()),
    }
}

fn parse_arch(args: &[String]) -> Result<PlbArchitecture, Box<dyn Error>> {
    match flag_value(args, "--arch").unwrap_or("granular") {
        "granular" => Ok(PlbArchitecture::granular()),
        "lut" => Ok(PlbArchitecture::lut_based()),
        "homogeneous" => Ok(PlbArchitecture::homogeneous_lut()),
        other => Err(format!("unknown architecture {other:?}").into()),
    }
}

fn parse_design(name: &str) -> Result<NamedDesign, Box<dyn Error>> {
    match name {
        "alu" => Ok(NamedDesign::Alu),
        "fpu" => Ok(NamedDesign::Fpu),
        "switch" => Ok(NamedDesign::NetworkSwitch),
        "firewire" => Ok(NamedDesign::Firewire),
        other => Err(format!("unknown design {other:?}").into()),
    }
}

fn load_design(path: &str) -> Result<Netlist, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let lib = generic::library();
    Ok(io::read_verilog(&text, &lib)?)
}

fn cmd_gen(args: &[String]) -> Result<(), Box<dyn Error>> {
    let name = args
        .first()
        .ok_or("gen requires a design name (alu|fpu|switch|firewire)")?;
    let design = parse_design(name)?;
    let params = parse_size(args)?;
    let netlist = design.generate(&params);
    let lib = generic::library();
    let text = io::write_verilog(&netlist, &lib)?;
    match flag_value(args, "-o") {
        Some(path) => {
            fs::write(path, &text)?;
            eprintln!(
                "wrote {} ({} cells, {} nets)",
                path,
                netlist.num_cells(),
                netlist.num_nets()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args.first().ok_or("flow requires a Verilog file")?;
    let design = load_design(path)?;
    let arch = parse_arch(args)?;
    let config = apply_robustness_flags(
        FlowConfig {
            compaction: !args.iter().any(|a| a == "--no-compaction"),
            ..FlowConfig::default()
        },
        args,
    )?;
    eprintln!(
        "running flows a and b on {:?} for {arch} ...",
        design.name()
    );
    let out = run_design(&design, &arch, &config)?;
    println!(
        "design          : {} ({:.0} NAND2-eq gates)",
        out.design, out.gates_nand2
    );
    if let Some(c) = &out.compaction {
        println!(
            "compaction      : {} -> {} cells ({:+.1} % area)",
            c.cells_before,
            c.cells_after,
            -100.0 * c.area_reduction()
        );
    }
    println!(
        "flow a (ASIC)   : die {:>10.0} µm², top-10 slack {:>9.1} ps, wire {:>9.0} µm",
        out.flow_a.die_area, out.flow_a.avg_top10_slack, out.flow_a.wirelength
    );
    let (c, r, used) = out.flow_b.array.expect("flow b packs an array");
    println!(
        "flow b (array)  : die {:>10.0} µm², top-10 slack {:>9.1} ps, wire {:>9.0} µm ({c}×{r} PLBs, {used} used)",
        out.flow_b.die_area, out.flow_b.avg_top10_slack, out.flow_b.wirelength
    );
    println!(
        "power           : {:.3} mW (flow a) / {:.3} mW (flow b)",
        out.flow_a.power_mw, out.flow_b.power_mw
    );
    println!(
        "a→b overhead    : {:+.1} % area, {:.1} ps slack",
        100.0 * out.area_overhead(),
        out.slack_degradation()
    );
    if args.iter().any(|a| a == "--stats") {
        println!("\nPer-stage statistics");
        println!("front-end");
        print!(
            "{}",
            vpga::flow::stats::render_stages(&out.front_stages, "  ")
        );
        for result in [&out.flow_a, &out.flow_b] {
            println!("{}", result.variant);
            print!("{}", vpga::flow::stats::render_stages(&result.stages, "  "));
        }
    }
    Ok(())
}

fn cmd_matrix(args: &[String]) -> Result<(), Box<dyn Error>> {
    let params = parse_size(args)?;
    let jobs: usize = match flag_value(args, "--jobs") {
        Some(v) => v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?,
        None if args.iter().any(|a| a == "--jobs") => return Err("--jobs needs a value".into()),
        None => 1,
    };
    let mut config = apply_robustness_flags(
        FlowConfig {
            compaction: !args.iter().any(|a| a == "--no-compaction"),
            ..FlowConfig::default()
        },
        args,
    )?;
    for (flag, slot) in [
        ("--emit-sdf", &mut config.emit.sdf_dir),
        ("--emit-xdl", &mut config.emit.xdl_dir),
    ] {
        match flag_value(args, flag) {
            Some(dir) => *slot = Some(dir.into()),
            None if args.iter().any(|a| a == flag) => {
                return Err(format!("{flag} needs a directory").into())
            }
            None => {}
        }
    }
    let only = match flag_value(args, "--only") {
        Some(f) => Some(f),
        None if args.iter().any(|a| a == "--only") => {
            return Err("--only needs a design/arch substring".into())
        }
        None => None,
    };
    let resume = args.iter().any(|a| a == "--resume");
    let checkpoints = match flag_value(args, "--checkpoint-dir") {
        Some(dir) => Some(vpga::flow::CheckpointStore::new(dir, resume)?),
        None if args.iter().any(|a| a == "--checkpoint-dir") => {
            return Err("--checkpoint-dir needs a value".into())
        }
        None if resume => return Err("--resume needs --checkpoint-dir".into()),
        None => None,
    };
    eprintln!(
        "running the 4 designs × 2 architectures matrix on {} worker(s) ...",
        vpga::flow::Executor::new(jobs).workers()
    );
    // Resilient by default: a failed cell is reported (and drops its pair
    // from the tables) while every other cell completes bit-identically.
    let matrix = Matrix::run_resilient_filtered(&params, &config, jobs, checkpoints.as_ref(), only);
    println!("matrix fingerprint: {:#018x}", matrix.fingerprint());
    println!();
    print!("{}", matrix.table1());
    println!();
    print!("{}", matrix.table2());
    println!();
    match matrix.try_claims() {
        Some(claims) => print!("{claims}"),
        None => println!("§3.2 claims unavailable: failed cells left holes in the matrix"),
    }
    if !matrix.failures().is_empty() {
        println!();
        print!("{}", matrix.failures_report());
    }
    if args.iter().any(|a| a == "--stats") {
        println!();
        print!("{}", matrix.stats_report());
    }
    if matrix.failures().is_empty() {
        Ok(())
    } else {
        Err(format!("{} matrix cell(s) failed", matrix.failures().len()).into())
    }
}

fn cmd_program(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args.first().ok_or("program requires a Verilog file")?;
    let design = load_design(path)?;
    let arch = parse_arch(args)?;
    let src = generic::library();
    let mut mapped = vpga::synth::map_netlist_fast(&design, &src, &arch)?;
    vpga::compact::compact(&mut mapped, &arch)?;
    let place_cfg = vpga::place::PlaceConfig::default();
    let mut placement = vpga::place::place(&mapped, arch.library(), &place_cfg);
    let array = vpga::pack::pack_iterative(
        &mapped,
        &arch,
        &mut placement,
        &place_cfg,
        &vpga::pack::PackConfig::default(),
    )?;
    let program = vpga::fabric::FabricProgram::generate(&mapped, &arch, &array)?;
    // Sanity: the program must reconstruct to an equivalent netlist.
    let _ = program.reconstruct(&mapped, &arch)?;
    let mut text = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(text, "# {program}");
    for plb in program.plbs() {
        if plb.slots.is_empty() {
            continue;
        }
        let _ = writeln!(text, "plb {}", plb.index);
        for slot in &plb.slots {
            let _ = writeln!(
                text,
                "  {}[{}] vias={} cell={}",
                slot.slot_cell, slot.slot_class, slot.vias, slot.cell_name
            );
        }
    }
    match flag_value(args, "-o") {
        Some(out_path) => {
            fs::write(out_path, &text)?;
            eprintln!("wrote {out_path}");
        }
        None => print!("{text}"),
    }
    eprintln!("{program}");
    Ok(())
}

/// Re-parses every `.sdf` / `.vxdl` artifact in a directory and checks
/// the round-trip fixpoints: a re-emitted artifact must be byte-identical
/// to the file on disk, and `.vxdl` parse-backs print their snapshot
/// fingerprints so they can be compared across runs.
fn cmd_verify_interchange(args: &[String]) -> Result<(), Box<dyn Error>> {
    use vpga::interchange::{sdf, snapshot_fingerprint, vxdl};
    let dir = args
        .first()
        .ok_or("verify-interchange requires a directory")?;
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("sdf" | "vxdl")))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no .sdf or .vxdl artifacts in {dir}").into());
    }
    let mut failures = 0usize;
    for path in &entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = fs::read_to_string(path)?;
        let outcome: Result<String, String> = match path.extension().and_then(|e| e.to_str()) {
            Some("sdf") => sdf::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|file| {
                    if file.to_text() == text {
                        Ok(format!("{} cells", file.cells.len()))
                    } else {
                        Err("re-emitted text differs from file".to_owned())
                    }
                }),
            Some("vxdl") => vxdl::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|doc| {
                    if vxdl::encode(&doc.netlist, &doc.placement, &doc.routes) == text {
                        Ok(format!(
                            "fingerprint {:#018x}",
                            snapshot_fingerprint(&doc.netlist, &doc.placement)
                        ))
                    } else {
                        Err("re-emitted text differs from file".to_owned())
                    }
                }),
            _ => unreachable!("filtered above"),
        };
        match outcome {
            Ok(detail) => println!("ok   {name}: round-trip fixpoint, {detail}"),
            Err(e) => {
                println!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        eprintln!("{} artifact(s) verified", entries.len());
        Ok(())
    } else {
        Err(format!("{failures} artifact(s) failed verification").into())
    }
}

/// Exports each binary front-end checkpoint in a directory to its `.vxdl`
/// text twin and verifies the text parses back to the same snapshot
/// fingerprint — the migration path from the binary checkpoint format to
/// the interchange text format.
fn cmd_migrate_checkpoints(args: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = args
        .first()
        .ok_or("migrate-checkpoints requires a checkpoint directory")?;
    let params = parse_size(args)?;
    let config = FlowConfig {
        compaction: !args.iter().any(|a| a == "--no-compaction"),
        ..FlowConfig::default()
    };
    let store = vpga::flow::CheckpointStore::new(dir, true)?;
    let mut migrated = 0usize;
    for design in ["alu", "firewire", "fpu", "network_switch"] {
        for arch in ["granular", "lut"] {
            if !store
                .dir()
                .join(format!("front-{design}-{arch}.ckpt"))
                .exists()
            {
                continue;
            }
            let (path, fp) = store.export_front_text(design, arch, &config, &params)?;
            let verified = store.verify_front_text(design, arch, &config, &params)?;
            assert_eq!(fp, verified, "export and verify disagree");
            println!(
                "migrated {design}/{arch} -> {} (fingerprint {fp:#018x})",
                path.display()
            );
            migrated += 1;
        }
    }
    if migrated == 0 {
        return Err(format!(
            "no front-end checkpoints in {dir} match --size/--no-compaction (run \
             `vpga matrix --checkpoint-dir {dir}` first)"
        )
        .into());
    }
    eprintln!("{migrated} checkpoint(s) migrated and verified");
    Ok(())
}

/// Parses `--flag N` as a number, with a default when the flag is absent.
fn numeric_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn Error>> {
    match flag_value(args, flag) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad {flag} value {v:?}").into()),
        None if args.iter().any(|a| a == flag) => Err(format!("{flag} needs a value").into()),
        None => Ok(default),
    }
}

/// `vpga serve` — run the flow daemon until SIGTERM or `/shutdown`, then
/// drain gracefully and report.
fn cmd_serve(args: &[String]) -> Result<(), Box<dyn Error>> {
    let config = vpga::serve::DaemonConfig {
        listen: flag_value(args, "--listen")
            .unwrap_or("127.0.0.1:8787")
            .to_owned(),
        workers: numeric_flag(args, "--workers", 4usize)?,
        queue_depth: numeric_flag(args, "--queue", 64usize)?,
        cache_budget: numeric_flag(args, "--cache-mb", 64usize)? << 20,
        checkpoint_dir: flag_value(args, "--checkpoint-dir").map(Into::into),
        chaos: args.iter().any(|a| a == "--chaos"),
    };
    vpga::serve::install_sigterm_handler();
    let handle = vpga::serve::spawn(config.clone())?;
    eprintln!(
        "vpga serve: listening on {} ({} workers, queue depth {}, cache {} MiB{}{})",
        handle.addr(),
        config.workers.max(1),
        config.queue_depth,
        config.cache_budget >> 20,
        match &config.checkpoint_dir {
            Some(dir) => format!(", checkpoints in {}", dir.display()),
            None => String::new(),
        },
        if config.chaos { ", chaos enabled" } else { "" },
    );
    let summary = handle.join();
    println!("{summary}");
    if summary.cache_valid {
        Ok(())
    } else {
        Err("artifact cache failed post-drain validation".into())
    }
}

/// `vpga submit` — one GET against a running daemon, body to stdout.
fn cmd_submit(args: &[String]) -> Result<(), Box<dyn Error>> {
    use std::net::ToSocketAddrs as _;
    let host = args.first().ok_or("submit requires HOST:PORT")?;
    let path = args.get(1).ok_or(
        "submit requires a request path, e.g. \"/job?design=alu&arch=granular&variant=a&params=tiny\"",
    )?;
    let addr = host
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("cannot resolve {host}"))?;
    let (status, body) = vpga::serve::get(addr, path)?;
    print!("{body}");
    if status == 200 {
        Ok(())
    } else {
        Err(format!("daemon answered {status}").into())
    }
}

/// `vpga serve-bench` — the load harness: an in-process daemon hammered
/// with mixed hit/miss/zero-deadline/poisoned jobs, every published
/// fingerprint checked against the batch-mode reference.
fn cmd_serve_bench(args: &[String]) -> Result<(), Box<dyn Error>> {
    let config = vpga::serve::BenchConfig {
        jobs: numeric_flag(args, "--jobs", 1000usize)?,
        clients: numeric_flag(args, "--clients", 8usize)?,
        cache_budget: numeric_flag(args, "--cache-kb", 512usize)? << 10,
        designs: numeric_flag(args, "--designs", 4usize)?,
    };
    eprintln!(
        "serve-bench: {} jobs across {} clients, cache budget {} KiB ...",
        config.jobs,
        config.clients,
        config.cache_budget >> 10
    );
    let report = vpga::serve::run_bench(&config)?;
    println!("{report}");
    report.verify(config.cache_budget)?;
    eprintln!("serve-bench: all invariants held");
    Ok(())
}

fn cmd_arch(args: &[String]) -> Result<(), Box<dyn Error>> {
    let archs: Vec<PlbArchitecture> = if args.is_empty() {
        vec![
            PlbArchitecture::granular(),
            PlbArchitecture::lut_based(),
            PlbArchitecture::homogeneous_lut(),
        ]
    } else {
        vec![parse_arch(["--arch".to_owned(), args[0].clone()].as_ref())?]
    };
    for arch in archs {
        println!("{arch}");
        println!("  fits full adder in one PLB: {}", arch.fits_full_adder());
        for cfg in arch.configs() {
            println!("  config {cfg}");
        }
    }
    Ok(())
}
