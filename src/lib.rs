//! # vpga — Via-Patterned Gate Array logic-block granularity exploration
//!
//! A from-scratch Rust reproduction of *Exploring Logic Block Granularity
//! for Regular Fabrics* (Koorapaty, Kheterpal, Gopalakrishnan, Fu, Pileggi —
//! DATE 2004): the paper's granular heterogeneous patternable logic block
//! (PLB), the LUT-based PLB it is compared against, and the complete CAD
//! flow (synthesis/mapping, regularity-driven logic compaction,
//! timing-driven placement, quadrisection packing, routing, and static
//! timing analysis) used to regenerate every table and figure of its
//! evaluation.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`logic`] | `vpga-logic` | truth tables, NPN classes, S3/Figure-2 analysis |
//! | [`netlist`] | `vpga-netlist` | netlists, component libraries, simulation |
//! | [`core`] | `vpga-core` | the PLB architectures, configs, characterization |
//! | [`synth`] | `vpga-synth` | AIG, cut enumeration, technology mapping |
//! | [`designs`] | `vpga-designs` | ALU / FPU / switch / Firewire generators |
//! | [`flowmap`] | `vpga-flowmap` | FlowMap max-flow/min-cut labeling |
//! | [`compact`] | `vpga-compact` | regularity-driven logic compaction |
//! | [`place`] | `vpga-place` | annealing placement + buffer insertion |
//! | [`pack`] | `vpga-pack` | recursive-quadrisection PLB packing |
//! | [`route`] | `vpga-route` | negotiated-congestion global routing |
//! | [`timing`] | `vpga-timing` | post-layout static timing analysis |
//! | [`flow`] | `vpga-flow` | flows a/b, Table 1/2 assembly, §3.2 claims |
//! | [`fabric`] | `vpga-fabric` | via-pattern generation and reconstruction |
//! | [`interchange`] | `vpga-interchange` | SDF timing export, `.vxdl` text codec |
//! | [`serve`] | `vpga-serve` | flow daemon: HTTP jobs, artifact cache, drain |
//!
//! # Quickstart
//!
//! ```
//! use vpga::core::PlbArchitecture;
//! use vpga::designs::{alu, DesignParams};
//! use vpga::flow::{run_design, FlowConfig};
//!
//! let design = alu(&DesignParams::tiny());
//! let arch = PlbArchitecture::granular();
//! let outcome = run_design(&design, &arch, &FlowConfig::default())?;
//! println!("die area: {:.0} µm²", outcome.flow_b.die_area);
//! # Ok::<(), vpga::flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vpga_compact as compact;
pub use vpga_core as core;
pub use vpga_designs as designs;
pub use vpga_fabric as fabric;
pub use vpga_flow as flow;
pub use vpga_flowmap as flowmap;
pub use vpga_interchange as interchange;
pub use vpga_logic as logic;
pub use vpga_netlist as netlist;
pub use vpga_pack as pack;
pub use vpga_place as place;
pub use vpga_route as route;
pub use vpga_serve as serve;
pub use vpga_synth as synth;
pub use vpga_timing as timing;
