//! The [`Strategy`] trait and the strategy combinators this workspace uses.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, StandardSample};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Full-range uniform values of `T` (see [`crate::any`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: StandardSample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// Uniform draw from a value set (see [`crate::prop::sample::select`]).
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        assert!(!self.options.is_empty(), "select over an empty set");
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// `Vec` strategy (see [`crate::prop::collection::vec`]).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
