//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the API subset its property tests actually use: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! range and [`any`] strategies, `prop::sample::select`,
//! `prop::collection::vec`, tuple strategies, and
//! [`Strategy::prop_map`].
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (no persistence file, fully
//! reproducible runs), and failing cases are reported without shrinking —
//! the panic message carries the case number so a failure can be replayed
//! exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising the input space (every case is deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

/// The standard strategy for a type: full-range uniform values.
pub fn any<T: rand::StandardSample>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Deterministic per-test RNG: FNV-1a of the test name, mixed with the
/// case index.
pub fn rng_for(test_name: &str, case: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Namespaced strategy constructors (`prop::sample`, `prop::collection`).
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        use crate::strategy::Select;

        /// A strategy drawing uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics at generation time if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A strategy for `Vec`s with length drawn from `size` and
        /// elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::rng_for(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )+
                let __run = move || $body;
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest case {__case}/{} of {} failed",
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u8..=255, y in 3usize..10) {
            let _ = x;
            prop_assert!((3..10).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((prop::sample::select(vec![1, 2, 3]), any::<u64>()), 2..6)
        ) {
            prop_assert!((2..6).contains(&v.len()));
            for (tag, _) in v {
                prop_assert!((1..=3).contains(&tag));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_is_honoured(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0u8..=255).prop_map(|b| u32::from(b) * 2);
        let mut rng = crate::rng_for("prop_map_transforms", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v <= 510);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(any::<u64>(), 3..10);
        let a = Strategy::generate(&s, &mut crate::rng_for("t", 5));
        let b = Strategy::generate(&s, &mut crate::rng_for("t", 5));
        assert_eq!(a, b);
    }
}
