//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *exact API subset it uses* of `rand` 0.8:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded by SplitMix64 — the same algorithm
//! family as the upstream 64-bit `SmallRng` — so the statistical quality is
//! equivalent, but the concrete streams differ from upstream (range
//! sampling here is a simple widening-multiply reduction). All uses in this
//! workspace only require *deterministic reproducibility for a given
//! seed*, which this provides; recorded experiment numbers were refreshed
//! against these streams (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution
/// (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by widening multiply (deterministic,
/// negligible bias for the span sizes used here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ seeded via
    /// SplitMix64 (the upstream 64-bit `SmallRng` algorithm family).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
