//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace's
//! benchmarks run against this minimal harness exposing the same surface:
//! [`Criterion`], [`black_box`], [`BenchmarkId`], `bench_function`,
//! `benchmark_group`/`bench_with_input`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up, then a fixed
//! sample of wall-clock timings with mean/min/max reported to stdout. It
//! is not statistically rigorous like upstream criterion, but gives stable
//! relative numbers for the micro/flow benchmarks in `vpga-bench`.
//!
//! Setting `CRITERION_SMOKE=1` in the environment caps every benchmark at
//! a single timed sample, regardless of configured sample sizes — CI uses
//! this to catch bench bit-rot without paying for real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The sample count actually used: `requested`, unless `CRITERION_SMOKE`
/// is set to anything but `0`/empty, in which case one sample.
fn effective_sample_size(requested: usize) -> usize {
    match std::env::var_os("CRITERION_SMOKE") {
        Some(v) if !v.is_empty() && v != "0" => 1,
        _ => requested.max(1),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style, as
    /// upstream criterion's `Criterion::sample_size`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }
}

/// A `group/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:48} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label:48} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        samples.len()
    );
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        label: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: effective_sample_size(self.sample_size),
        });
        report(label, &samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_size: effective_sample_size(self.sample_size),
            },
            input,
        );
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        label: &str,
        mut f: F,
    ) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: effective_sample_size(self.sample_size),
        });
        report(&format!("{}/{label}", self.name), &samples);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn smoke_env_caps_samples() {
        assert_eq!(effective_sample_size(10), 10);
        std::env::set_var("CRITERION_SMOKE", "1");
        assert_eq!(effective_sample_size(10), 1);
        std::env::set_var("CRITERION_SMOKE", "0");
        assert_eq!(effective_sample_size(10), 10);
        std::env::remove_var("CRITERION_SMOKE");
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
