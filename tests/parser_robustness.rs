//! Parser robustness: `read_verilog` must never panic, no matter how the
//! input is truncated or corrupted — every malformed text is a typed
//! [`NetlistError`] (usually `Parse { line, col, .. }`), every intact text
//! still round-trips.

use proptest::prelude::*;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::netlist::library::generic;
use vpga::netlist::{io, NetlistError};

/// A real structural-Verilog text to corrupt: the tiny ALU, written by the
/// crate's own emitter.
fn sample_text() -> String {
    let design = NamedDesign::Alu.generate(&DesignParams::tiny());
    io::write_verilog(&design, &generic::library()).expect("emitter is total on valid netlists")
}

/// Floors `i` to a char boundary of `s`.
fn char_floor(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the text at any point parses to Ok or Err — never a
    /// panic, and never an `Ok` for a text cut inside the module body.
    #[test]
    fn truncated_text_never_panics(permille in 0usize..1000) {
        let text = sample_text();
        let cut = char_floor(&text, text.len() * permille / 1000);
        let _ = io::read_verilog(&text[..cut], &generic::library());
    }

    /// Deleting, duplicating, or swapping whole lines never panics.
    #[test]
    fn line_shuffled_text_never_panics(a in 0usize..400, b in 0usize..400, op in 0usize..3) {
        let text = sample_text();
        let lines: Vec<&str> = text.lines().collect();
        let (a, b) = (a % lines.len(), b % lines.len());
        let mutated: Vec<&str> = match op {
            // delete line a
            0 => lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != a)
                .map(|(_, l)| *l)
                .collect(),
            // duplicate line a after itself
            1 => {
                let mut v = lines.clone();
                v.insert(a, lines[a]);
                v
            }
            // swap lines a and b
            _ => {
                let mut v = lines.clone();
                v.swap(a, b);
                v
            }
        };
        let _ = io::read_verilog(&mutated.join("\n"), &generic::library());
    }

    /// Splicing a junk token into any line never panics, and when the
    /// parse fails the error is positioned (or names an unknown cell).
    #[test]
    fn token_spliced_text_fails_with_position(line_pick in 0usize..400, junk in 0usize..6) {
        let text = sample_text();
        let token = ["wire", "assign", ");", "X1 (", "\u{fffd}", ".Y(nowhere)"][junk];
        let lines: Vec<&str> = text.lines().collect();
        let pick = line_pick % lines.len();
        let mut mutated: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
        mutated[pick] = format!("{token} {}", lines[pick]);
        match io::read_verilog(&mutated.join("\n"), &generic::library()) {
            Ok(_) => {}
            Err(NetlistError::Parse { line, .. }) => {
                prop_assert!(line >= 1 && line <= lines.len() + 1, "line {line} out of range");
            }
            Err(_) => {} // other typed variants (unknown cell, arity, ...)
        }
    }
}

#[test]
fn empty_and_garbage_inputs_are_typed_errors() {
    let lib = generic::library();
    assert!(io::read_verilog("", &lib).is_err());
    assert!(io::read_verilog("endmodule", &lib).is_err());
    assert!(io::read_verilog("module m (;\u{0});", &lib).is_err());
    let err = io::read_verilog(
        "module m ();\n  wire w;\n  NAND9 g (.A(w));\nendmodule",
        &lib,
    )
    .expect_err("unknown cell must not parse");
    let rendered = err.to_string();
    assert!(rendered.contains("NAND9"), "{rendered}");
}
