//! Kill-and-resume golden tests (only built with `--features fault-inject`).
//!
//! Each case interrupts the ALU/granular cell at one of the eight stage
//! points with an injected panic while a [`CheckpointStore`] is
//! persisting completed stages, then reruns the matrix resuming from the
//! same directory. The resumed matrix must be clean and fingerprint
//! byte-identical to the uninterrupted golden run — checkpoint restore
//! may never change a published number.
//!
//! This lives in its own test binary: the fault registry is
//! process-global, and sharing a process with the fault-injection matrix
//! suite would serialize unrelated tests on one lock.

#![cfg(feature = "fault-inject")]

use std::path::PathBuf;
use std::sync::Mutex;

use vpga::designs::DesignParams;
use vpga::flow::faultpoint::{self, FaultKind};
use vpga::flow::report::Matrix;
use vpga::flow::{CheckpointStore, FlowConfig};

static LOCK: Mutex<()> = Mutex::new(());

/// The tiny-size matrix fingerprint locked down by the regression
/// harness (see `tests/paper_regression.rs`); an interrupted-then-resumed
/// run must land on exactly this value.
const TINY_MATRIX_FINGERPRINT: u64 = 0xd516_b48d_af41_3258;

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultpoint::disarm_all();
    guard
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vpga-resume-{tag}-{}", std::process::id()))
}

#[test]
fn interrupt_at_each_stage_then_resume_is_bit_identical() {
    let _guard = locked();
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    // One fault point per stage of the flow: the four front-end stages
    // fire in the shared front context; pack/swap only exist in the
    // flow-b back-end, route/sta are exercised in flow a.
    let points = [
        ("synth", "alu/granular"),
        ("compact", "alu/granular"),
        ("place", "alu/granular"),
        ("physsynth", "alu/granular"),
        ("pack", "alu/granular/b"),
        ("swap", "alu/granular/b"),
        ("route", "alu/granular/a"),
        ("sta", "alu/granular/a"),
    ];
    for (point, ctx) in points {
        let dir = scratch_dir(point);
        let _ = std::fs::remove_dir_all(&dir);

        // Interrupted run: the injected panic kills the ALU/granular
        // cell at `point`; every stage that completed before it (and
        // every other cell) is already checkpointed on disk.
        faultpoint::disarm_all();
        faultpoint::arm(point, Some(ctx), FaultKind::Panic);
        let store = CheckpointStore::new(&dir, false).unwrap();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let interrupted = Matrix::run_resilient_checkpointed(&params, &config, 2, Some(&store));
        std::panic::set_hook(prev_hook);
        // A front-end fault fails both variants of the pair (the second
        // as Skipped); a back-end fault poisons only its own cell.
        let expected_failures = if ctx.ends_with("/a") || ctx.ends_with("/b") {
            1
        } else {
            2
        };
        assert_eq!(
            interrupted.failures().len(),
            expected_failures,
            "{point}: {}",
            interrupted.failures_report()
        );
        assert_eq!(interrupted.outcomes().len(), 7, "{point}");
        assert!(!faultpoint::any_armed(), "{point} fault should be one-shot");

        // Resumed run: completed stages restore from the checkpoints,
        // only the interrupted tail recomputes, and the matrix
        // fingerprint is byte-identical to the uninterrupted golden.
        let store = CheckpointStore::new(&dir, true).unwrap();
        let resumed = Matrix::run_resilient_checkpointed(&params, &config, 2, Some(&store));
        assert!(
            resumed.failures().is_empty(),
            "{point}: {}",
            resumed.failures_report()
        );
        assert_eq!(
            resumed.fingerprint(),
            TINY_MATRIX_FINGERPRINT,
            "resume after {point} diverged from the golden run"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_from_a_complete_checkpoint_recomputes_nothing_and_matches() {
    let _guard = locked();
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    let dir = scratch_dir("complete");
    let _ = std::fs::remove_dir_all(&dir);

    // A fully healthy checkpointed run...
    let store = CheckpointStore::new(&dir, false).unwrap();
    let first = Matrix::run_resilient_checkpointed(&params, &config, 2, Some(&store));
    assert!(first.failures().is_empty());
    assert_eq!(first.fingerprint(), TINY_MATRIX_FINGERPRINT);

    // ...resumes entirely from disk: every back-end result loads from
    // its checkpoint, and the fingerprint still matches the golden.
    let store = CheckpointStore::new(&dir, true).unwrap();
    let resumed = Matrix::run_resilient_checkpointed(&params, &config, 1, Some(&store));
    assert!(resumed.failures().is_empty());
    assert_eq!(resumed.fingerprint(), TINY_MATRIX_FINGERPRINT);

    let _ = std::fs::remove_dir_all(&dir);
}
