//! Tier-1 load test for the serve daemon: a scaled-down run of the
//! `vpga serve-bench` harness (the CI release build runs the full
//! thousand-job sweep). Mixed cache-hit / cache-miss / zero-deadline /
//! chaos-poisoned jobs hammer an in-process daemon over real sockets,
//! and every published fingerprint must be bit-identical to the
//! batch-mode reference.

use vpga::serve::{run_bench, BenchConfig};

#[test]
fn mixed_load_produces_bit_identical_fingerprints_and_bounded_memory() {
    let config = BenchConfig {
        jobs: 154,
        clients: 4,
        // Small enough to force eviction churn under tiny artifacts.
        cache_budget: 256 << 10,
        // Two designs keep the debug-mode batch reference cheap.
        designs: 2,
    };
    let report = run_bench(&config).expect("bench infrastructure");
    report
        .verify(config.cache_budget)
        .unwrap_or_else(|violation| panic!("{violation}\n{report}"));
    // The stream really was mixed: every job kind occurred, and the
    // cache-parity majority dominated.
    assert!(report.completed > 0, "{report}");
    assert!(report.deadline_failed > 0, "{report}");
    assert!(
        report.poison_failed + report.poison_survived > 0,
        "{report}"
    );
    assert_eq!(report.mismatched, 0, "{report}");
    assert_eq!(report.unexpected, 0, "{report}");
    // Drain accounting: the daemon saw every job that got a response.
    assert!(report.drain.cache_valid, "{report}");
}
