//! Cache-eviction properties of the serve daemon's artifact cache.
//!
//! The contract under test: evicting **any** subset of cached stage
//! artifacts never changes a published fingerprint — it only changes
//! how much the next job recomputes. Cache counters live in
//! [`vpga::flow::StageStats`] display fields that the fingerprint fold
//! explicitly excludes, so a hit-served and a recomputed run of the
//! same job are bit-identical.

use proptest::prelude::*;
use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::{ArtifactCache, CacheOutcome, CachedFlow, FlowConfig, FlowVariant, ServiceJob};

fn tiny_job(variant: FlowVariant) -> ServiceJob {
    ServiceJob {
        design: NamedDesign::Alu,
        arch: PlbArchitecture::granular(),
        variant,
        params: DesignParams::tiny(),
        config: FlowConfig::default(),
    }
}

/// Exhaustive over every subset of the three artifact keys a (design,
/// arch) pair produces — shared front-end plus one result per variant:
/// evict the subset, re-run both variants, and the fingerprints must
/// not move. Only the hit/miss pattern may.
#[test]
fn evicting_any_artifact_subset_changes_recomputes_never_fingerprints() {
    let flow = CachedFlow::new(64 << 20);
    let golden_a = flow
        .run_job(&tiny_job(FlowVariant::A), &mut |_| {})
        .unwrap()
        .fingerprint();
    let golden_b = flow
        .run_job(&tiny_job(FlowVariant::B), &mut |_| {})
        .unwrap()
        .fingerprint();
    let keys = flow.cache().keys();
    assert_eq!(keys.len(), 3, "front + two results: {keys:?}");
    let front = keys.iter().position(|k| k.starts_with("front/")).unwrap();
    let result_a = keys.iter().position(|k| k.contains("/a/")).unwrap();
    let result_b = keys.iter().position(|k| k.contains("/b/")).unwrap();

    for mask in 0u32..(1 << keys.len()) {
        // Repopulate (hits where possible), then evict the subset.
        flow.run_job(&tiny_job(FlowVariant::A), &mut |_| {})
            .unwrap();
        flow.run_job(&tiny_job(FlowVariant::B), &mut |_| {})
            .unwrap();
        assert_eq!(flow.cache().keys(), keys, "population drifted");
        for (i, key) in keys.iter().enumerate() {
            if mask & (1 << i) != 0 {
                assert!(flow.cache().evict_key(key), "mask {mask:03b}: {key}");
            }
        }
        let gone = |i: usize| mask & (1 << i) != 0;
        let a = flow
            .run_job(&tiny_job(FlowVariant::A), &mut |_| {})
            .unwrap();
        assert_eq!(a.front_cache_hit, !gone(front), "mask {mask:03b}");
        assert_eq!(a.result_cache_hit, !gone(result_a), "mask {mask:03b}");
        assert_eq!(a.fingerprint(), golden_a, "mask {mask:03b}");
        // A's run just republished the front-end, so B always hits it.
        let b = flow
            .run_job(&tiny_job(FlowVariant::B), &mut |_| {})
            .unwrap();
        assert!(b.front_cache_hit, "mask {mask:03b}");
        assert_eq!(b.result_cache_hit, !gone(result_b), "mask {mask:03b}");
        assert_eq!(b.fingerprint(), golden_b, "mask {mask:03b}");
        flow.cache().validate_all().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synthetic LRU property: for any interleaving of publishes,
    /// touches, and hand evictions over any byte budget, the cache
    /// never exceeds its budget (beyond the single just-published
    /// entry waiters must find), never serves bytes that fail digest
    /// validation, and never loses count of its resident bytes.
    #[test]
    fn lru_budget_holds_for_any_operation_sequence(
        budget in 0usize..512,
        ops in prop::collection::vec((0u8..12, 1usize..96, 0u8..8), 1..48),
    ) {
        let cache = ArtifactCache::new(budget);
        for (key, len, op) in ops {
            let key = format!("k{key}");
            if op == 0 {
                // Hand eviction must be idempotent-safe on any state.
                cache.evict_key(&key);
            } else {
                match cache.acquire(&key, "prop") {
                    CacheOutcome::Hit(bytes) => prop_assert!(!bytes.is_empty()),
                    CacheOutcome::Miss(claim) => {
                        claim.publish(vec![len as u8; len], "prop").unwrap();
                    }
                }
            }
            let s = cache.stats();
            prop_assert!(
                s.bytes <= budget || s.entries == 1,
                "over budget: {s}"
            );
            let resident: usize = cache
                .keys()
                .iter()
                .map(|k| match cache.acquire(k, "prop") {
                    CacheOutcome::Hit(bytes) => bytes.len(),
                    CacheOutcome::Miss(claim) => {
                        drop(claim);
                        0
                    }
                })
                .sum();
            prop_assert_eq!(resident, cache.stats().bytes, "byte accounting");
        }
        prop_assert!(cache.validate_all().is_ok());
    }
}
