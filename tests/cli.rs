//! End-to-end tests of the `vpga` command-line binary.

use std::process::Command;

fn vpga() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpga"))
}

#[test]
fn help_prints_usage() {
    let out = vpga().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage"), "{text}");
}

#[test]
fn unknown_command_fails_with_message() {
    let out = vpga().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"), "{text}");
}

#[test]
fn gen_flow_program_roundtrip() {
    let dir = std::env::temp_dir().join("vpga_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let design = dir.join("alu.v");
    let fabric = dir.join("alu.fabric");

    // gen → Verilog file.
    let out = vpga()
        .args(["gen", "alu", "--size", "tiny", "-o"])
        .arg(&design)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&design).expect("file written");
    assert!(text.contains("module alu"), "{text}");

    // flow → metrics on stdout.
    let out = vpga()
        .args(["flow"])
        .arg(&design)
        .args(["--arch", "granular"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("flow a"), "{text}");
    assert!(text.contains("flow b"), "{text}");
    assert!(text.contains("power"), "{text}");

    // program → via map file (internally verified by reconstruction).
    let out = vpga()
        .args(["program"])
        .arg(&design)
        .args(["--arch", "lut", "-o"])
        .arg(&fabric)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&fabric).expect("file written");
    assert!(text.contains("plb "), "{text}");
    assert!(text.contains("vias="), "{text}");
}

#[test]
fn arch_lists_all_architectures() {
    let out = vpga().arg("arch").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["granular", "lut", "homogeneous"] {
        assert!(text.contains(name), "missing {name}: {text}");
    }
    assert!(text.contains("full adder"));
}
