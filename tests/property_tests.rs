//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use vpga::core::{matcher, PlbArchitecture};
use vpga::logic::{npn, s3, TruthTable, Tt3, Var};
use vpga::netlist::library::generic;
use vpga::netlist::{NetId, Netlist};
use vpga::synth::{map_netlist_fast, Aig};

proptest! {
    /// NPN canonicalization: the stored transform always reproduces the
    /// canonical representative, and equivalence is transitive through it.
    #[test]
    fn npn_transform_is_consistent(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let (canon, tr) = npn::canonicalize3(t);
        prop_assert_eq!(tr.apply(t), canon);
        let (canon2, _) = npn::canonicalize3(canon);
        prop_assert_eq!(canon, canon2, "canonical form is a fixed point");
    }

    /// Shannon cofactoring reconstructs every function around every pivot.
    #[test]
    fn cofactor_reconstruction(bits in 0u8..=255, v in 0usize..3) {
        let t = Tt3::new(bits);
        let var = Var::from_index(v).unwrap();
        let (g, h) = t.cofactors(var);
        prop_assert_eq!(Tt3::from_cofactors(var, g, h), t);
    }

    /// S3 feasibility matches its defining property: both cofactors w.r.t.
    /// the select must avoid XOR/XNOR.
    #[test]
    fn s3_definition(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let (g, h) = t.cofactors(s3::SELECT);
        prop_assert_eq!(
            s3::s3_feasible(t),
            !g.is_xor_like() && !h.is_xor_like()
        );
    }

    /// Truth-table composition agrees with pointwise evaluation.
    #[test]
    fn compose_matches_eval(outer in 0u64..256, a in 0u64..256, b in 0u64..256) {
        let f = TruthTable::new(3, outer).unwrap();
        let ta = TruthTable::new(3, a).unwrap();
        let tb = TruthTable::new(3, b).unwrap();
        let tc = TruthTable::var(3, 2).unwrap();
        let composed = f.compose(&[ta, tb, tc]).unwrap();
        for m in 0..8u64 {
            let inner = (ta.eval(m) as u64) | ((tb.eval(m) as u64) << 1) | ((tc.eval(m) as u64) << 2);
            prop_assert_eq!(composed.eval(m), f.eval(inner));
        }
    }

    /// Any matched cell really computes the target function under its pin
    /// binding and configuration.
    #[test]
    fn matcher_matches_are_sound(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let arch = PlbArchitecture::granular();
        for name in ["MUX", "XOA", "ND3", "ND2"] {
            let cell = arch.library().cell_by_name(name).unwrap();
            if let Some(m) = matcher::match_cell(cell, t, 3) {
                let pins: Vec<Tt3> = m.pins.iter().map(|p| p.tt()).collect();
                prop_assert_eq!(matcher::compose(m.config, &pins), t);
            }
        }
    }

    /// Every covering granular configuration realizes its functions
    /// correctly (sampled).
    #[test]
    fn config_realizations_are_sound(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let arch = PlbArchitecture::granular();
        for cfg in arch.configs() {
            if cfg.functions().contains(t) {
                let r = cfg.realize(t, arch.library());
                prop_assert!(r.is_some(), "{} covers {} but cannot realize it", cfg.name(), t);
                prop_assert_eq!(r.unwrap().output_function(), t);
            }
        }
    }
}

/// Strategy: a random combinational netlist over the generic library.
fn arbitrary_netlist() -> impl Strategy<Value = Netlist> {
    // A sequence of gate choices; each gate picks fanins among prior nets.
    let gate_names = prop::sample::select(vec![
        "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "MUX2", "MAJ3", "XOR3", "AOI21", "INV",
    ]);
    (
        2usize..5,
        prop::collection::vec((gate_names, any::<u64>()), 3..30),
    )
        .prop_map(|(n_inputs, gates)| {
            let lib = generic::library();
            let mut n = Netlist::new("random");
            let mut nets: Vec<NetId> = (0..n_inputs)
                .map(|i| n.add_input(format!("i{i}")))
                .collect();
            for (ix, (gate, seed)) in gates.into_iter().enumerate() {
                let arity = lib.cell_by_name(gate).unwrap().arity();
                let pins: Vec<NetId> = (0..arity)
                    .map(|k| nets[(seed as usize + k * 7919) % nets.len()])
                    .collect();
                let out = n
                    .add_lib_cell(format!("g{ix}"), &lib, gate, &pins)
                    .expect("valid gate");
                nets.push(out);
            }
            n.add_output("y", *nets.last().unwrap());
            // A second output deep in the middle exercises multi-output
            // cones.
            n.add_output("z", nets[nets.len() / 2]);
            n
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Technology mapping preserves the function of arbitrary netlists on
    /// both architectures (exhaustive simulation up to 2^n input vectors,
    /// capped).
    #[test]
    fn mapping_preserves_random_netlists(netlist in arbitrary_netlist()) {
        let src = generic::library();
        let n_in = netlist.inputs().len();
        let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(32))
            .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let div = vpga::netlist::sim::first_divergence(
                &netlist, &src, &mapped, arch.library(), &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None, "diverges on {}", arch.name());
        }
    }

    /// The AIG round-trip preserves combinational functions.
    #[test]
    fn aig_roundtrip_preserves_function(netlist in arbitrary_netlist()) {
        let src = generic::library();
        let (aig, _) = Aig::from_netlist(&netlist, &src).unwrap();
        let n_in = netlist.inputs().len();
        let mut sim = vpga::netlist::sim::Simulator::new(&netlist, &src).unwrap();
        for m in 0..(1u32 << n_in).min(32) {
            let vals: Vec<bool> = (0..n_in).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&vals), sim.eval(&vals));
        }
    }
}

mod physical_properties {
    use super::*;
    use vpga::netlist::CellClass;
    use vpga::pack::PackConfig;
    use vpga::place::PlaceConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Packing a random mapped netlist always yields a legal array:
        /// every cell seated, every PLB within capacity, every group whole.
        #[test]
        fn packing_is_always_legal(netlist in arbitrary_netlist(), seed in 0u64..1000) {
            let src = generic::library();
            let arch = PlbArchitecture::granular();
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let place_cfg = PlaceConfig { seed, ..PlaceConfig::default() };
            let placement = vpga::place::place(&mapped, arch.library(), &place_cfg);
            let array = vpga::pack::pack(&mapped, &arch, &placement, &PackConfig::default())
                .expect("packable");
            let lib_cells = mapped.cells().filter(|(_, c)| c.lib_id().is_some()).count();
            prop_assert_eq!(array.num_assigned(), lib_cells);
            for col in 0..array.cols() {
                for row in 0..array.rows() {
                    for class in CellClass::PLB_CLASSES {
                        prop_assert!(
                            array.plb(col, row).used(class) <= arch.capacity().count(class)
                        );
                    }
                }
            }
            let mut groups: std::collections::HashMap<_, std::collections::HashSet<usize>> =
                std::collections::HashMap::new();
            for (id, cell) in mapped.cells() {
                if let (Some(g), Some(p)) = (cell.group(), array.plb_of(id)) {
                    groups.entry(g).or_default().insert(p);
                }
            }
            for homes in groups.values() {
                prop_assert_eq!(homes.len(), 1);
            }
        }

        /// Routing a random placed netlist converges to a legal solution
        /// with the default channel capacity, and every inter-tile net gets
        /// a length of at least its tile-quantized manhattan bound.
        #[test]
        fn routing_is_legal_and_lower_bounded(netlist in arbitrary_netlist(), seed in 0u64..1000) {
            let src = generic::library();
            let place_cfg = PlaceConfig { seed, ..PlaceConfig::default() };
            let placement = vpga::place::place(&netlist, &src, &place_cfg);
            let cfg = vpga::route::RouteConfig::default();
            let result = vpga::route::route(&netlist, &src, &placement, &cfg);
            prop_assert_eq!(result.overflow_edges(), 0);
            let tile = result.tile_size();
            for net in netlist.nets() {
                let len = result.net_length(net);
                if len == 0.0 {
                    continue;
                }
                // Lower bound: manhattan distance between driver and the
                // farthest sink, minus tile quantization slack.
                let Some(driver) = netlist.driver(net) else { continue };
                let Some((dx, dy)) = placement.position(driver) else { continue };
                let far = netlist
                    .sinks(net)
                    .iter()
                    .filter_map(|&(c, _)| placement.position(c))
                    .map(|(x, y)| (x - dx).abs() + (y - dy).abs())
                    .fold(0.0f64, f64::max);
                prop_assert!(
                    len + 2.0 * tile >= far - 2.0 * tile,
                    "net routed {len} vs manhattan {far} (tile {tile})"
                );
            }
        }

        /// The fabric program of any packed netlist reconstructs to a
        /// functionally identical design.
        #[test]
        fn fabric_program_roundtrips(netlist in arbitrary_netlist()) {
            let src = generic::library();
            let arch = PlbArchitecture::lut_based();
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let placement =
                vpga::place::place(&mapped, arch.library(), &PlaceConfig::default());
            let array = vpga::pack::pack(&mapped, &arch, &placement, &PackConfig::default())
                .expect("packable");
            let program = vpga::fabric::FabricProgram::generate(&mapped, &arch, &array)
                .expect("programmable");
            let rebuilt = program.reconstruct(&mapped, &arch).expect("reconstructs");
            let n_in = mapped.inputs().len();
            let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(16))
                .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
                .collect();
            let div = vpga::netlist::sim::first_divergence(
                &mapped, arch.library(), &rebuilt, arch.library(), &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None);
        }

        /// The binary wire-snapshot codec is a bit-exact round trip: a
        /// decoded netlist + placement re-encode to identical bytes, and
        /// the interchange snapshot fingerprint is stable across the
        /// trip (the invariant the `.vxdl` codec and the checkpoint
        /// migration path both build on).
        #[test]
        fn wire_snapshot_roundtrip_is_bit_exact(netlist in arbitrary_netlist(), util in 3u32..9) {
            use vpga::netlist::wire::{Reader, Writer};
            let lib = generic::library();
            let placement =
                vpga::place::Placement::initial(&netlist, &lib, f64::from(util) / 10.0);
            let mut w = Writer::new();
            netlist.encode_snapshot(&mut w);
            placement.encode_snapshot(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let n2 = Netlist::decode_snapshot(&mut r).expect("netlist decodes");
            let p2 = vpga::place::Placement::decode_snapshot(&mut r).expect("placement decodes");
            prop_assert!(r.done(), "trailing bytes after decode");
            let mut w2 = Writer::new();
            n2.encode_snapshot(&mut w2);
            p2.encode_snapshot(&mut w2);
            prop_assert_eq!(&w2.into_bytes(), &bytes, "re-encode differs");
            prop_assert_eq!(
                vpga::interchange::snapshot_fingerprint(&netlist, &placement),
                vpga::interchange::snapshot_fingerprint(&n2, &p2)
            );
        }

        /// Verilog round-trips preserve function for arbitrary netlists.
        #[test]
        fn verilog_roundtrip_preserves_function(netlist in arbitrary_netlist()) {
            let src = generic::library();
            let text = vpga::netlist::io::write_verilog(&netlist, &src).unwrap();
            let back = vpga::netlist::io::read_verilog(&text, &src).unwrap();
            let n_in = netlist.inputs().len();
            let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(16))
                .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
                .collect();
            let div = vpga::netlist::sim::first_divergence(
                &netlist, &src, &back, &src, &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None);
        }
    }
}

/// Properties of the parallel flow executor and its per-stage
/// instrumentation (`vpga::flow::exec` / `vpga::flow::stats`).
mod executor_properties {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    use proptest::prelude::*;
    use vpga::core::PlbArchitecture;
    use vpga::designs::{DesignParams, NamedDesign};
    use vpga::flow::{Executor, FlowConfig, FlowJob, FlowMatrix, FlowVariant, JobResult, Stage};

    /// The full tiny-size matrix, computed once and shared across cases
    /// (each case below only *reads* stage records, which is cheap).
    fn tiny_matrix_results() -> &'static [JobResult] {
        static CACHE: OnceLock<Vec<JobResult>> = OnceLock::new();
        CACHE.get_or_init(|| {
            FlowMatrix::full()
                .run(
                    &DesignParams::tiny(),
                    &FlowConfig::default(),
                    &Executor::new(2),
                )
                .expect("tiny matrix runs")
        })
    }

    /// The four (variant × arch) jobs for one design.
    fn alu_jobs() -> Vec<FlowJob> {
        let mut jobs = Vec::new();
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            for variant in [FlowVariant::A, FlowVariant::B] {
                jobs.push(FlowJob {
                    design: NamedDesign::Alu,
                    arch: arch.clone(),
                    variant,
                });
            }
        }
        jobs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The executor invokes every job index exactly once and returns
        /// results in input order, for any (n, workers) combination —
        /// nothing dropped, nothing duplicated.
        #[test]
        fn executor_runs_each_job_exactly_once(n in 0usize..48, workers in 0usize..9) {
            let exec = Executor::new(workers);
            let calls: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let out = exec.run(n, |i| {
                calls[i].fetch_add(1, Ordering::Relaxed);
                i * 31 + 7
            });
            prop_assert_eq!(out.len(), n);
            for (i, v) in out.iter().enumerate() {
                prop_assert_eq!(calls[i].load(Ordering::Relaxed), 1, "job {} run count", i);
                prop_assert_eq!(*v, i * 31 + 7);
            }
        }

        /// Every stage record of every matrix run is internally
        /// consistent: positive sizes, non-negative wall time, accepted ≤
        /// attempted, finite costs, and cost-after ≤ cost-before for the
        /// annealing stages (which restore their best/starting state).
        #[test]
        fn stage_stats_are_internally_consistent(pick in 0usize..16) {
            let results = tiny_matrix_results();
            let jr = &results[pick % results.len()];
            for s in jr.front_stages.iter().chain(&jr.result.stages) {
                prop_assert!(s.cells > 0, "{}: no cells", s.stage);
                prop_assert!(s.nets > 0, "{}: no nets", s.stage);
                prop_assert!(s.wall.as_secs_f64() >= 0.0);
                if let (Some(att), Some(acc)) = (s.moves_attempted, s.moves_accepted) {
                    prop_assert!(acc <= att, "{}: accepted {} > attempted {}", s.stage, acc, att);
                }
                if let (Some(before), Some(after)) = (s.cost_before, s.cost_after) {
                    prop_assert!(before.is_finite() && after.is_finite());
                    if matches!(s.stage, Stage::Place | Stage::PhysSynth | Stage::Swap) {
                        prop_assert!(
                            after <= before + 1e-9,
                            "{}: cost worsened {} -> {}", s.stage, before, after
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Arbitrary job subsets (any order, duplicates allowed) complete
        /// without panics, return one result per job in order, and every
        /// result matches the full-matrix run of the same job bit for bit.
        /// (Case count kept small: every case runs real flow jobs.)
        #[test]
        fn arbitrary_job_subsets_run_cleanly(mask in 1u16..4096, workers in 1usize..5) {
            let pool = alu_jobs();
            // Draw up to 12 job picks (2 bits each → 4 choices) from the
            // mask so duplicates and arbitrary orders occur naturally.
            let n_picks = 1 + (mask as usize % 5);
            let jobs: Vec<FlowJob> = (0..n_picks)
                .map(|k| pool[(mask as usize >> (2 * k)) % pool.len()].clone())
                .collect();
            let expect: Vec<u64> = jobs
                .iter()
                .map(|j| {
                    tiny_matrix_results()
                        .iter()
                        .find(|r| {
                            r.job.design == j.design
                                && r.job.arch.name() == j.arch.name()
                                && r.job.variant == j.variant
                        })
                        .expect("job is in the full matrix")
                        .result
                        .fingerprint()
                })
                .collect();
            let out = FlowMatrix::from_jobs(jobs)
                .run(&DesignParams::tiny(), &FlowConfig::default(), &Executor::new(workers))
                .expect("subset runs");
            prop_assert_eq!(out.len(), expect.len());
            for (r, want) in out.iter().zip(&expect) {
                prop_assert_eq!(r.result.fingerprint(), *want);
            }
        }
    }
}
