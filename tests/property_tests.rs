//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use vpga::core::{matcher, PlbArchitecture};
use vpga::logic::{npn, s3, Tt3, TruthTable, Var};
use vpga::netlist::library::generic;
use vpga::netlist::{Netlist, NetId};
use vpga::synth::{map_netlist_fast, Aig};

proptest! {
    /// NPN canonicalization: the stored transform always reproduces the
    /// canonical representative, and equivalence is transitive through it.
    #[test]
    fn npn_transform_is_consistent(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let (canon, tr) = npn::canonicalize3(t);
        prop_assert_eq!(tr.apply(t), canon);
        let (canon2, _) = npn::canonicalize3(canon);
        prop_assert_eq!(canon, canon2, "canonical form is a fixed point");
    }

    /// Shannon cofactoring reconstructs every function around every pivot.
    #[test]
    fn cofactor_reconstruction(bits in 0u8..=255, v in 0usize..3) {
        let t = Tt3::new(bits);
        let var = Var::from_index(v).unwrap();
        let (g, h) = t.cofactors(var);
        prop_assert_eq!(Tt3::from_cofactors(var, g, h), t);
    }

    /// S3 feasibility matches its defining property: both cofactors w.r.t.
    /// the select must avoid XOR/XNOR.
    #[test]
    fn s3_definition(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let (g, h) = t.cofactors(s3::SELECT);
        prop_assert_eq!(
            s3::s3_feasible(t),
            !g.is_xor_like() && !h.is_xor_like()
        );
    }

    /// Truth-table composition agrees with pointwise evaluation.
    #[test]
    fn compose_matches_eval(outer in 0u64..256, a in 0u64..256, b in 0u64..256) {
        let f = TruthTable::new(3, outer).unwrap();
        let ta = TruthTable::new(3, a).unwrap();
        let tb = TruthTable::new(3, b).unwrap();
        let tc = TruthTable::var(3, 2).unwrap();
        let composed = f.compose(&[ta, tb, tc]).unwrap();
        for m in 0..8u64 {
            let inner = (ta.eval(m) as u64) | ((tb.eval(m) as u64) << 1) | ((tc.eval(m) as u64) << 2);
            prop_assert_eq!(composed.eval(m), f.eval(inner));
        }
    }

    /// Any matched cell really computes the target function under its pin
    /// binding and configuration.
    #[test]
    fn matcher_matches_are_sound(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let arch = PlbArchitecture::granular();
        for name in ["MUX", "XOA", "ND3", "ND2"] {
            let cell = arch.library().cell_by_name(name).unwrap();
            if let Some(m) = matcher::match_cell(cell, t, 3) {
                let pins: Vec<Tt3> = m.pins.iter().map(|p| p.tt()).collect();
                prop_assert_eq!(matcher::compose(m.config, &pins), t);
            }
        }
    }

    /// Every covering granular configuration realizes its functions
    /// correctly (sampled).
    #[test]
    fn config_realizations_are_sound(bits in 0u8..=255) {
        let t = Tt3::new(bits);
        let arch = PlbArchitecture::granular();
        for cfg in arch.configs() {
            if cfg.functions().contains(t) {
                let r = cfg.realize(t, arch.library());
                prop_assert!(r.is_some(), "{} covers {} but cannot realize it", cfg.name(), t);
                prop_assert_eq!(r.unwrap().output_function(), t);
            }
        }
    }
}

/// Strategy: a random combinational netlist over the generic library.
fn arbitrary_netlist() -> impl Strategy<Value = Netlist> {
    // A sequence of gate choices; each gate picks fanins among prior nets.
    let gate_names = prop::sample::select(vec![
        "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "MUX2", "MAJ3", "XOR3", "AOI21", "INV",
    ]);
    (
        2usize..5,
        prop::collection::vec((gate_names, any::<u64>()), 3..30),
    )
        .prop_map(|(n_inputs, gates)| {
            let lib = generic::library();
            let mut n = Netlist::new("random");
            let mut nets: Vec<NetId> = (0..n_inputs)
                .map(|i| n.add_input(format!("i{i}")))
                .collect();
            for (ix, (gate, seed)) in gates.into_iter().enumerate() {
                let arity = lib.cell_by_name(gate).unwrap().arity();
                let pins: Vec<NetId> = (0..arity)
                    .map(|k| nets[(seed as usize + k * 7919) % nets.len()])
                    .collect();
                let out = n
                    .add_lib_cell(format!("g{ix}"), &lib, gate, &pins)
                    .expect("valid gate");
                nets.push(out);
            }
            n.add_output("y", *nets.last().unwrap());
            // A second output deep in the middle exercises multi-output
            // cones.
            n.add_output("z", nets[nets.len() / 2]);
            n
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Technology mapping preserves the function of arbitrary netlists on
    /// both architectures (exhaustive simulation up to 2^n input vectors,
    /// capped).
    #[test]
    fn mapping_preserves_random_netlists(netlist in arbitrary_netlist()) {
        let src = generic::library();
        let n_in = netlist.inputs().len();
        let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(32))
            .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let div = vpga::netlist::sim::first_divergence(
                &netlist, &src, &mapped, arch.library(), &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None, "diverges on {}", arch.name());
        }
    }

    /// The AIG round-trip preserves combinational functions.
    #[test]
    fn aig_roundtrip_preserves_function(netlist in arbitrary_netlist()) {
        let src = generic::library();
        let (aig, _) = Aig::from_netlist(&netlist, &src).unwrap();
        let n_in = netlist.inputs().len();
        let mut sim = vpga::netlist::sim::Simulator::new(&netlist, &src).unwrap();
        for m in 0..(1u32 << n_in).min(32) {
            let vals: Vec<bool> = (0..n_in).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&vals), sim.eval(&vals));
        }
    }
}

mod physical_properties {
    use super::*;
    use vpga::netlist::CellClass;
    use vpga::pack::PackConfig;
    use vpga::place::PlaceConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Packing a random mapped netlist always yields a legal array:
        /// every cell seated, every PLB within capacity, every group whole.
        #[test]
        fn packing_is_always_legal(netlist in arbitrary_netlist(), seed in 0u64..1000) {
            let src = generic::library();
            let arch = PlbArchitecture::granular();
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let place_cfg = PlaceConfig { seed, ..PlaceConfig::default() };
            let placement = vpga::place::place(&mapped, arch.library(), &place_cfg);
            let array = vpga::pack::pack(&mapped, &arch, &placement, &PackConfig::default())
                .expect("packable");
            let lib_cells = mapped.cells().filter(|(_, c)| c.lib_id().is_some()).count();
            prop_assert_eq!(array.num_assigned(), lib_cells);
            for col in 0..array.cols() {
                for row in 0..array.rows() {
                    for class in CellClass::PLB_CLASSES {
                        prop_assert!(
                            array.plb(col, row).used(class) <= arch.capacity().count(class)
                        );
                    }
                }
            }
            let mut groups: std::collections::HashMap<_, std::collections::HashSet<usize>> =
                std::collections::HashMap::new();
            for (id, cell) in mapped.cells() {
                if let (Some(g), Some(p)) = (cell.group(), array.plb_of(id)) {
                    groups.entry(g).or_default().insert(p);
                }
            }
            for homes in groups.values() {
                prop_assert_eq!(homes.len(), 1);
            }
        }

        /// Routing a random placed netlist converges to a legal solution
        /// with the default channel capacity, and every inter-tile net gets
        /// a length of at least its tile-quantized manhattan bound.
        #[test]
        fn routing_is_legal_and_lower_bounded(netlist in arbitrary_netlist(), seed in 0u64..1000) {
            let src = generic::library();
            let place_cfg = PlaceConfig { seed, ..PlaceConfig::default() };
            let placement = vpga::place::place(&netlist, &src, &place_cfg);
            let cfg = vpga::route::RouteConfig::default();
            let result = vpga::route::route(&netlist, &src, &placement, &cfg);
            prop_assert_eq!(result.overflow_edges(), 0);
            let tile = result.tile_size();
            for net in netlist.nets() {
                let len = result.net_length(net);
                if len == 0.0 {
                    continue;
                }
                // Lower bound: manhattan distance between driver and the
                // farthest sink, minus tile quantization slack.
                let Some(driver) = netlist.driver(net) else { continue };
                let Some((dx, dy)) = placement.position(driver) else { continue };
                let far = netlist
                    .sinks(net)
                    .iter()
                    .filter_map(|&(c, _)| placement.position(c))
                    .map(|(x, y)| (x - dx).abs() + (y - dy).abs())
                    .fold(0.0f64, f64::max);
                prop_assert!(
                    len + 2.0 * tile >= far - 2.0 * tile,
                    "net routed {len} vs manhattan {far} (tile {tile})"
                );
            }
        }

        /// The fabric program of any packed netlist reconstructs to a
        /// functionally identical design.
        #[test]
        fn fabric_program_roundtrips(netlist in arbitrary_netlist()) {
            let src = generic::library();
            let arch = PlbArchitecture::lut_based();
            let mut mapped = map_netlist_fast(&netlist, &src, &arch).unwrap();
            vpga::compact::compact(&mut mapped, &arch).unwrap();
            let placement =
                vpga::place::place(&mapped, arch.library(), &PlaceConfig::default());
            let array = vpga::pack::pack(&mapped, &arch, &placement, &PackConfig::default())
                .expect("packable");
            let program = vpga::fabric::FabricProgram::generate(&mapped, &arch, &array)
                .expect("programmable");
            let rebuilt = program.reconstruct(&mapped, &arch).expect("reconstructs");
            let n_in = mapped.inputs().len();
            let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(16))
                .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
                .collect();
            let div = vpga::netlist::sim::first_divergence(
                &mapped, arch.library(), &rebuilt, arch.library(), &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None);
        }

        /// Verilog round-trips preserve function for arbitrary netlists.
        #[test]
        fn verilog_roundtrip_preserves_function(netlist in arbitrary_netlist()) {
            let src = generic::library();
            let text = vpga::netlist::io::write_verilog(&netlist, &src).unwrap();
            let back = vpga::netlist::io::read_verilog(&text, &src).unwrap();
            let n_in = netlist.inputs().len();
            let vectors: Vec<Vec<bool>> = (0..(1u32 << n_in).min(16))
                .map(|m| (0..n_in).map(|i| (m >> i) & 1 == 1).collect())
                .collect();
            let div = vpga::netlist::sim::first_divergence(
                &netlist, &src, &back, &src, &vectors,
            )
            .unwrap();
            prop_assert_eq!(div, None);
        }
    }
}
