//! Fault-injection matrix tests (only built with `--features fault-inject`).
//!
//! Each test arms named fault points in the `flow::faultpoint` harness and
//! checks that the flow's recovery machinery does exactly what the design
//! promises: typed errors surface as the right [`FlowError`] variant with
//! stage attribution, injected panics are trapped at the job boundary and
//! poison only their own matrix cell, retries recover with derived
//! reseeds, and a clean rerun is bit-identical to an uninjected golden
//! run.
//!
//! The fault registry is process-global, so every test serializes on
//! [`LOCK`] and starts from a disarmed registry.

#![cfg(feature = "fault-inject")]

use std::sync::Mutex;

use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::faultpoint::{self, FaultKind};
use vpga::flow::{
    run_design, CachedFlow, CheckpointStore, Executor, FlowConfig, FlowError, FlowMatrix,
    FlowVariant, JobEvent, ServiceJob, Stage,
};
use vpga::serve::{get, spawn, DaemonConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultpoint::disarm_all();
    guard
}

fn tiny_alu() -> vpga::netlist::Netlist {
    NamedDesign::Alu.generate(&DesignParams::tiny())
}

#[test]
fn every_armed_error_point_surfaces_its_stage_taxonomy() {
    let _guard = locked();
    let design = tiny_alu();
    let arch = PlbArchitecture::granular();
    let config = FlowConfig::default();
    let expectations = [
        ("synth", Stage::Synth),
        ("compact", Stage::Compact),
        ("place", Stage::Place),
        ("physsynth", Stage::PhysSynth),
        ("pack", Stage::Pack),
        ("swap", Stage::Swap),
        ("route", Stage::Route),
        ("sta", Stage::Timing),
    ];
    for (point, stage) in expectations {
        faultpoint::disarm_all();
        faultpoint::arm(point, None, FaultKind::Error);
        let err = run_design(&design, &arch, &config)
            .err()
            .unwrap_or_else(|| panic!("armed {point} fault did not fail the flow"));
        assert_eq!(err.stage(), Some(stage), "{point}: {err}");
        let root = err.root();
        let variant_ok = match stage {
            Stage::Synth => matches!(root, FlowError::Synth(_)),
            Stage::Compact => matches!(root, FlowError::Netlist(_)),
            Stage::Place | Stage::PhysSynth => matches!(root, FlowError::Place(_)),
            Stage::Pack | Stage::Swap => matches!(root, FlowError::Pack(_)),
            Stage::Route => matches!(root, FlowError::Route(_)),
            Stage::Timing => matches!(root, FlowError::Timing(_)),
            _ => false,
        };
        assert!(variant_ok, "{point} produced the wrong variant: {root:?}");
        assert!(!faultpoint::any_armed(), "{point} fault should be one-shot");
    }
}

#[test]
fn incremental_sta_fault_surfaces_as_a_physsynth_timing_error() {
    let _guard = locked();
    // The incremental timer's propagation loop runs inside physical
    // synthesis: a failure there must attribute to that stage while
    // keeping the timing-error taxonomy.
    faultpoint::disarm_all();
    faultpoint::arm("sta_incremental", None, FaultKind::Error);
    let err = run_design(
        &tiny_alu(),
        &PlbArchitecture::granular(),
        &FlowConfig::default(),
    )
    .expect_err("armed sta_incremental fault must fail the flow");
    assert_eq!(err.stage(), Some(Stage::PhysSynth), "{err}");
    assert!(
        matches!(err.root(), FlowError::Timing(_)),
        "wrong variant: {:?}",
        err.root()
    );
    assert!(!faultpoint::any_armed(), "fault should be one-shot");
}

#[test]
fn timeout_fault_reports_deadline_exceeded() {
    let _guard = locked();
    faultpoint::arm("route", None, FaultKind::Timeout);
    let err = run_design(
        &tiny_alu(),
        &PlbArchitecture::granular(),
        &FlowConfig::default(),
    )
    .expect_err("timeout fault must fail the flow");
    assert!(
        matches!(
            err,
            FlowError::DeadlineExceeded {
                stage: Stage::Route,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn mid_matrix_deadline_poisons_one_cell_and_reports_partial_results() {
    let _guard = locked();
    // A deadline blown in the middle of the matrix (route of the FPU /
    // granular / flow-a cell) must surface as exactly one
    // DeadlineExceeded cell failure through `run_resilient`, while the
    // other seven pairs complete and the tables still render.
    faultpoint::arm("route", Some("fpu/granular/a"), FaultKind::Timeout);
    let matrix =
        vpga::flow::report::Matrix::run_resilient(&DesignParams::tiny(), &FlowConfig::default(), 2);
    assert_eq!(matrix.outcomes().len(), 7, "{}", matrix.failures_report());
    assert_eq!(matrix.failures().len(), 1, "{}", matrix.failures_report());
    let failure = &matrix.failures()[0];
    assert_eq!(failure.design, "FPU");
    assert_eq!(failure.arch, "granular");
    assert_eq!(failure.variant, FlowVariant::A);
    assert!(failure.error.contains("deadline"), "{failure}");
    // Partial results still report: both tables render without the
    // poisoned pair, and the aggregate claims are withheld, not wrong.
    assert!(matrix.table1().contains(NamedDesign::Alu.name()));
    assert!(!matrix.failures_report().is_empty());
    assert!(matrix.try_claims().is_none());
    assert!(!faultpoint::any_armed(), "timeout fault should be one-shot");
}

#[test]
fn retries_recover_from_one_shot_stage_errors() {
    let _guard = locked();
    let design = tiny_alu();
    let arch = PlbArchitecture::granular();
    let config = FlowConfig {
        retries: 2,
        ..FlowConfig::default()
    };
    // The injected error consumes the first attempt; the reseeded retry
    // succeeds and the consumed retry is recorded in the stage stats.
    for (point, stage) in [("place", Stage::Place), ("pack", Stage::Pack)] {
        faultpoint::disarm_all();
        faultpoint::arm(point, None, FaultKind::Error);
        let out = run_design(&design, &arch, &config)
            .unwrap_or_else(|e| panic!("retry did not recover from {point}: {e}"));
        let stages: Vec<_> = out
            .front_stages
            .iter()
            .chain(&out.flow_a.stages)
            .chain(&out.flow_b.stages)
            .collect();
        let retried = stages
            .iter()
            .find(|s| s.stage == stage && s.retries == Some(1));
        assert!(
            retried.is_some(),
            "{point}: no stage recorded the consumed retry: {stages:?}"
        );
    }
}

#[test]
fn injected_panic_poisons_one_cell_and_leaves_the_rest_bit_identical() {
    let _guard = locked();
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    let matrix = FlowMatrix::full();
    let executor = Executor::new(4);

    let golden = matrix.run_cells(&params, &config, &executor);
    let golden_prints: Vec<u64> = golden
        .iter()
        .map(|c| {
            c.as_ref()
                .expect("clean run has no failures")
                .result
                .fingerprint()
        })
        .collect();

    // Poison exactly the (ALU, granular, flow b) back-end; silence the
    // default panic hook while the injected panic unwinds.
    faultpoint::arm("pack", Some("alu/granular/b"), FaultKind::Panic);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let injected = matrix.run_cells(&params, &config, &executor);
    std::panic::set_hook(prev_hook);

    assert_eq!(injected.len(), golden.len());
    for (i, (job, cell)) in matrix.jobs().iter().zip(&injected).enumerate() {
        let poisoned = job.design == NamedDesign::Alu
            && job.arch.name() == "granular"
            && job.variant == FlowVariant::B;
        match cell {
            Err(e) if poisoned => {
                assert!(
                    matches!(
                        e,
                        FlowError::StagePanic {
                            stage: Some(Stage::Pack),
                            ..
                        }
                    ),
                    "poisoned cell reported {e:?}"
                );
                assert!(e.to_string().contains("injected fault"), "{e}");
            }
            Ok(result) if !poisoned => assert_eq!(
                result.result.fingerprint(),
                golden_prints[i],
                "healthy cell {i} diverged from the golden run"
            ),
            other => panic!("cell {i}: unexpected outcome {other:?}"),
        }
    }

    // With the one-shot fault consumed, a rerun is fully healthy and
    // bit-identical to the golden run.
    assert!(!faultpoint::any_armed());
    let rerun = matrix.run_cells(&params, &config, &executor);
    for (i, cell) in rerun.iter().enumerate() {
        assert_eq!(
            cell.as_ref().expect("rerun is clean").result.fingerprint(),
            golden_prints[i]
        );
    }
}

#[test]
fn worker_thread_panic_fails_the_owning_stage_closed() {
    let _guard = locked();
    let params = DesignParams::tiny();
    // Worker threads only exist with intra-stage parallelism on.
    let config = FlowConfig {
        stage_threads: 2,
        ..FlowConfig::default()
    };
    let matrix = FlowMatrix::full();
    let executor = Executor::new(1);

    let golden = matrix.run_cells(&params, &config, &executor);
    let golden_prints: Vec<u64> = golden
        .iter()
        .map(|c| {
            c.as_ref()
                .expect("clean parallel run has no failures")
                .result
                .fingerprint()
        })
        .collect();

    // The worker hooks are bare `fn` pointers and see the fixed context
    // `"worker"`, so an armed fault fires at the *first* parallel region
    // of its kind the schedule reaches. Speculative-annealing workers run
    // under place, physical synthesis, and pack; batched-negotiation
    // workers only under route.
    let cases: [(&str, &[Stage]); 2] = [
        (
            "place_worker",
            &[Stage::Place, Stage::PhysSynth, Stage::Pack],
        ),
        ("route_worker", &[Stage::Route]),
    ];
    for (point, owners) in cases {
        faultpoint::disarm_all();
        faultpoint::arm(point, None, FaultKind::Panic);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Must complete (fail closed), never deadlock on the round
        // barriers: the panicking worker trips the abort flag, the scope
        // joins, and the stage thread re-raises into the job boundary.
        let injected = matrix.run_cells(&params, &config, &executor);
        std::panic::set_hook(prev_hook);
        assert!(
            !faultpoint::any_armed(),
            "{point}: worker fault never fired — no parallel region spawned"
        );

        let mut panicked = Vec::new();
        for (i, cell) in injected.iter().enumerate() {
            match cell {
                Ok(result) => assert_eq!(
                    result.result.fingerprint(),
                    golden_prints[i],
                    "{point}: healthy cell {i} diverged from the golden run"
                ),
                Err(FlowError::StagePanic { stage, payload, .. }) => {
                    let stage = stage.unwrap_or_else(|| {
                        panic!("{point}: worker panic lost its stage attribution")
                    });
                    assert!(
                        owners.contains(&stage),
                        "{point}: panic attributed to {stage:?}, not an owning stage"
                    );
                    assert!(
                        payload.contains(&format!("injected fault at {point}")),
                        "{point}: unexpected payload {payload:?}"
                    );
                    panicked.push(i);
                }
                // A front-stage panic poisons the pair: the sibling cell
                // reports Skipped with the panic as its cause.
                Err(FlowError::Skipped { cause, .. }) => {
                    assert!(cause.contains("injected fault"), "{point}: {cause:?}");
                }
                Err(other) => panic!("{point}: cell {i} failed with {other:?}"),
            }
        }
        assert_eq!(
            panicked.len(),
            1,
            "{point}: the one-shot fault must poison exactly one cell"
        );
    }

    // With the faults consumed, a rerun is clean and bit-identical.
    let rerun = matrix.run_cells(&params, &config, &executor);
    for (i, cell) in rerun.iter().enumerate() {
        assert_eq!(
            cell.as_ref().expect("rerun is clean").result.fingerprint(),
            golden_prints[i]
        );
    }
}

fn tiny_service_job(variant: FlowVariant) -> ServiceJob {
    ServiceJob {
        design: NamedDesign::Alu,
        arch: PlbArchitecture::granular(),
        variant,
        params: DesignParams::tiny(),
        config: FlowConfig::default(),
    }
}

fn golden_fingerprint(variant: FlowVariant) -> u64 {
    let out = run_design(
        &tiny_alu(),
        &PlbArchitecture::granular(),
        &FlowConfig::default(),
    )
    .expect("golden run");
    match variant {
        FlowVariant::A => out.flow_a.fingerprint(),
        FlowVariant::B => out.flow_b.fingerprint(),
    }
}

#[test]
fn checkpoint_rename_fault_loses_the_update_never_a_torn_artifact() {
    let _guard = locked();
    let dir = std::env::temp_dir().join(format!("vpga-rename-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let golden = golden_fingerprint(FlowVariant::A);

    // Kill the job in the checkpoint_rename window: the synth checkpoint's
    // durable temp write lands, the rename is lost, and the compact fault
    // then ends the job — exactly the disk state a crash leaves behind.
    faultpoint::arm("checkpoint_rename", None, FaultKind::Error);
    faultpoint::arm("compact", None, FaultKind::Error);
    let flow =
        CachedFlow::new(64 << 20).with_checkpoints(CheckpointStore::new(&dir, true).unwrap());
    let err = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap_err();
    assert_eq!(err.stage(), Some(Stage::Compact), "{err}");
    assert!(!faultpoint::any_armed(), "both faults must have fired");
    drop(flow);

    // The interrupted write left its temp file (the durable half ran)...
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        leftovers.iter().any(|n| n.ends_with(".tmp")),
        "expected an orphaned temp file: {leftovers:?}"
    );
    // ...but never a readable half-artifact: a resuming run finds nothing
    // to restore, recomputes every stage, and matches the golden run.
    let flow =
        CachedFlow::new(64 << 20).with_checkpoints(CheckpointStore::new(&dir, true).unwrap());
    let mut computed = 0usize;
    let out = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |e| {
            if matches!(e, JobEvent::Stage { .. }) {
                computed += 1;
            }
        })
        .unwrap();
    assert_eq!(computed, 6, "the lost checkpoint must restore nothing");
    assert_eq!(out.fingerprint(), golden);
    drop(flow);

    // And the orphaned temp file never confuses later durable writes: a
    // third run (fresh memory cache) resumes wholly from the checkpoints
    // the second run wrote.
    let flow =
        CachedFlow::new(64 << 20).with_checkpoints(CheckpointStore::new(&dir, true).unwrap());
    let mut computed = 0usize;
    let out = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |e| {
            if matches!(e, JobEvent::Stage { .. }) {
                computed += 1;
            }
        })
        .unwrap();
    assert_eq!(computed, 0, "resume must restore every stage from disk");
    assert_eq!(out.fingerprint(), golden);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_write_fault_abandons_the_publish_but_the_job_completes() {
    let _guard = locked();
    let golden = golden_fingerprint(FlowVariant::A);
    let flow = CachedFlow::new(64 << 20);
    // The one-shot fault eats the front-end publish; the job proceeds on
    // its in-memory artifacts and the result publish succeeds.
    faultpoint::arm("cache_write", None, FaultKind::Error);
    let out = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap();
    assert_eq!(out.fingerprint(), golden);
    assert!(!out.front_cache_hit && !out.result_cache_hit);
    let stats = flow.cache().stats();
    assert_eq!(stats.entries, 1, "only the result entry landed: {stats}");
    assert_eq!(stats.in_flight, 0, "abandoned claim must be cleared");
    // The next run recomputes the unpublished front-end (and republishes
    // it) but serves the result from cache.
    let warm = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap();
    assert!(!warm.front_cache_hit && warm.result_cache_hit);
    assert_eq!(warm.fingerprint(), golden);
    assert_eq!(flow.cache().stats().entries, 2);
    flow.cache().validate_all().unwrap();
}

#[test]
fn cache_read_fault_fails_closed_into_a_clean_recompute() {
    let _guard = locked();
    let golden = golden_fingerprint(FlowVariant::A);
    let flow = CachedFlow::new(64 << 20);
    flow.run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap();
    // An injected read fault is treated as failed validation: the entry
    // is dropped and recomputed, never served.
    faultpoint::arm("cache_read", None, FaultKind::Error);
    let warm = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap();
    assert!(!warm.front_cache_hit, "suspect front entry must not serve");
    assert!(warm.result_cache_hit, "untainted result entry still serves");
    assert_eq!(warm.fingerprint(), golden);
    let stats = flow.cache().stats();
    assert_eq!(stats.invalid, 1, "{stats}");
    assert_eq!(stats.entries, 2, "recompute republishes: {stats}");
    flow.cache().validate_all().unwrap();
}

#[test]
fn cache_evict_fault_aborts_the_sweep_and_the_next_publish_recovers() {
    let _guard = locked();
    // A zero budget makes every publish sweep everything but itself.
    let flow = CachedFlow::new(0);
    faultpoint::arm("cache_evict", None, FaultKind::Error);
    let a = flow
        .run_job(&tiny_service_job(FlowVariant::A), &mut |_| {})
        .unwrap();
    assert_eq!(a.fingerprint(), golden_fingerprint(FlowVariant::A));
    // The result publish picked the front entry as its victim, the
    // injected fault aborted the sweep, and the cache runs transiently
    // over budget rather than pretend the removal happened.
    assert!(!faultpoint::any_armed(), "evict fault must have fired");
    assert_eq!(flow.cache().stats().entries, 2);
    // The next publish sweeps clean again: B reuses the surviving front
    // entry, then its result publish evicts everything else.
    let b = flow
        .run_job(&tiny_service_job(FlowVariant::B), &mut |_| {})
        .unwrap();
    assert!(b.front_cache_hit, "front shared despite the aborted sweep");
    assert_eq!(b.fingerprint(), golden_fingerprint(FlowVariant::B));
    let stats = flow.cache().stats();
    assert_eq!(stats.entries, 1, "recovered sweep: {stats}");
    flow.cache().validate_all().unwrap();
}

#[test]
fn serve_accept_fault_drops_one_connection_and_the_daemon_recovers() {
    let _guard = locked();
    let daemon = spawn(DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 4,
        cache_budget: 1 << 20,
        checkpoint_dir: None,
        chaos: false,
    })
    .unwrap();
    faultpoint::arm("serve_accept", None, FaultKind::Error);
    // The faulted accept drops the connection unqueued: the client sees
    // a close with no response, never a hang or a crash.
    assert!(get(daemon.addr(), "/healthz").is_err());
    assert!(!faultpoint::any_armed(), "accept fault must have fired");
    let (status, body) = get(daemon.addr(), "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    daemon.shutdown();
    let summary = daemon.join();
    assert_eq!(summary.rejected, 1, "{summary}");
    assert!(summary.cache_valid);
}

#[test]
fn serve_drain_fault_never_prevents_a_clean_drain() {
    let _guard = locked();
    let daemon = spawn(DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 4,
        cache_budget: 64 << 20,
        checkpoint_dir: None,
        chaos: false,
    })
    .unwrap();
    let (status, body) = get(
        daemon.addr(),
        "/job?design=alu&arch=granular&variant=a&params=tiny",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("fingerprint 0x"), "{body}");
    // A fault injected into the drain path is logged and the drain
    // completes anyway: workers join, the cache validates.
    faultpoint::arm("serve_drain", None, FaultKind::Error);
    daemon.shutdown();
    let summary = daemon.join();
    assert!(!faultpoint::any_armed(), "drain fault must have fired");
    assert_eq!(summary.completed, 1, "{summary}");
    assert!(summary.cache_valid, "{summary}");
}

#[test]
fn fault_specs_parse_and_reject_garbage() {
    let _guard = locked();
    faultpoint::arm_from_spec("route=error, sta@alu/granular=timeout").unwrap();
    assert!(faultpoint::any_armed());
    faultpoint::disarm_all();
    assert!(faultpoint::arm_from_spec("route").is_err());
    assert!(faultpoint::arm_from_spec("route=explode").is_err());
    assert!(!faultpoint::any_armed());
}
