//! Golden regression tests for the direction-level claims recorded in
//! EXPERIMENTS.md (the paper's Tables 1–2 and Figure 2).
//!
//! Absolute numbers depend on design scale and annealer seeds, so these
//! tests lock the *directions* §3.2 argues from — which architecture wins
//! each comparison — at the `small` size CI runs, plus the exact S3
//! coverage counts behind Figure 2, which are scale-free combinatorial
//! facts.

use vpga::designs::NamedDesign;
use vpga::flow::report::Matrix;
use vpga::flow::FlowConfig;
use vpga::logic::s3;

/// Runs the full 4×2 matrix once at the `small` size and checks every
/// Table 1/2 direction claim against it.
#[test]
fn table_direction_claims_hold_at_small_scale() {
    let params = vpga::designs::DesignParams::small();
    let matrix = Matrix::run(&params, &FlowConfig::default()).expect("matrix runs");
    let pair = |d: NamedDesign| {
        (
            matrix.get(d, "granular").expect("granular outcome"),
            matrix.get(d, "lut").expect("lut outcome"),
        )
    };

    // Table 1 / §3.2: the granular PLB packs datapath designs into less
    // flow-b die area than the LUT PLB.
    for design in [
        NamedDesign::Alu,
        NamedDesign::Fpu,
        NamedDesign::NetworkSwitch,
    ] {
        let (g, l) = pair(design);
        assert!(
            g.flow_b.die_area < l.flow_b.die_area,
            "{}: granular flow-b area {:.0} should beat LUT {:.0}",
            design.name(),
            g.flow_b.die_area,
            l.flow_b.die_area
        );
    }

    // Table 1 / §3.2: Firewire is the outlier — sequential/control
    // dominated, so the granular PLB *loses* area there.
    let (gw, lw) = pair(NamedDesign::Firewire);
    assert!(
        gw.flow_b.die_area > lw.flow_b.die_area,
        "Firewire should invert: granular {:.0} vs LUT {:.0}",
        gw.flow_b.die_area,
        lw.flow_b.die_area
    );
    let claims = matrix.claims();
    assert!(
        claims.firewire_area_change < 0.0,
        "Firewire area change should be negative: {:.3}",
        claims.firewire_area_change
    );
    assert!(
        claims.datapath_area_reduction > 0.0,
        "datapath area reduction should be positive: {:.3}",
        claims.datapath_area_reduction
    );

    // Table 2 / §3.2: the granular PLB wins flow-b top-10 slack on all
    // four designs (less negative = better).
    for design in NamedDesign::ALL {
        let (g, l) = pair(design);
        assert!(
            g.flow_b.avg_top10_slack > l.flow_b.avg_top10_slack,
            "{}: granular flow-b slack {:.1} should beat LUT {:.1}",
            design.name(),
            g.flow_b.avg_top10_slack,
            l.flow_b.avg_top10_slack
        );
    }
    assert!(
        claims.mean_slack_gain > 0.0,
        "mean slack gain should be positive: {:.3}",
        claims.mean_slack_gain
    );
}

/// Figure 2: the S3 cell covers exactly 196 of the 256 3-input functions
/// with the fixed select pin, 238 when any pin may serve as the select,
/// and the modified cell of Figure 3 covers all 256.
#[test]
fn s3_coverage_counts_are_exact() {
    assert_eq!(s3::s3_set().len(), 196);
    let free_select = (0u16..=255)
        .filter(|&b| s3::s3_feasible_any_select(vpga::logic::Tt3::new(b as u8)))
        .count();
    assert_eq!(free_select, 238);
    assert_eq!(s3::modified_s3_set().len(), 256);
    // The infeasible census accounts for every one of the 256 − 196 = 60
    // missing functions.
    let census = s3::InfeasibleCensus::compute();
    assert_eq!(census.total(), 60);
    assert_eq!(census.unclassified(), 0);
}
