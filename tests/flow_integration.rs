//! Cross-crate integration: the full Figure 6 flow, end to end, with
//! functional-equivalence and structural-legality checks at every hand-off.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::netlist::library::generic;
use vpga::netlist::sim::first_divergence;
use vpga::netlist::CellClass;
use vpga::pack::PackConfig;
use vpga::place::PlaceConfig;

/// The front-end (mapping + compaction) must preserve every design's
/// function on both architectures — checked by random co-simulation.
#[test]
fn front_end_preserves_function_for_every_design_and_arch() {
    let params = DesignParams::tiny();
    let src = generic::library();
    let mut rng = SmallRng::seed_from_u64(2004);
    for design in NamedDesign::ALL {
        let golden = design.generate(&params);
        let vectors: Vec<Vec<bool>> = (0..40)
            .map(|_| (0..golden.inputs().len()).map(|_| rng.gen()).collect())
            .collect();
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            let mut mapped =
                vpga::synth::map_netlist_fast(&golden, &src, &arch).expect("mapping succeeds");
            vpga::compact::compact(&mut mapped, &arch).expect("compaction succeeds");
            mapped.validate(arch.library()).expect("valid netlist");
            let div = first_divergence(&golden, &src, &mapped, arch.library(), &vectors)
                .expect("simulable");
            assert_eq!(div, None, "{design} diverges on {}", arch.name());
        }
    }
}

/// The packed array must be structurally legal: every library cell seated,
/// no PLB over capacity, groups kept whole.
#[test]
fn packed_arrays_are_legal() {
    let params = DesignParams::tiny();
    let src = generic::library();
    for design in [NamedDesign::Alu, NamedDesign::Fpu] {
        for arch in [PlbArchitecture::granular(), PlbArchitecture::lut_based()] {
            let golden = design.generate(&params);
            let mut mapped =
                vpga::synth::map_netlist_fast(&golden, &src, &arch).expect("mapping succeeds");
            vpga::compact::compact(&mut mapped, &arch).expect("compaction succeeds");
            let place_cfg = PlaceConfig::default();
            let mut placement = vpga::place::place(&mapped, arch.library(), &place_cfg);
            let array = vpga::pack::pack_iterative(
                &mapped,
                &arch,
                &mut placement,
                &place_cfg,
                &PackConfig::default(),
            )
            .expect("packing succeeds");
            // Every cell assigned.
            let mut groups: std::collections::HashMap<_, std::collections::HashSet<usize>> =
                std::collections::HashMap::new();
            for (id, cell) in mapped.cells() {
                if cell.lib_id().is_none() {
                    continue;
                }
                let plb = array.plb_of(id).unwrap_or_else(|| {
                    panic!("{design}: unassigned cell {}", mapped.cell_name(id))
                });
                if let Some(g) = cell.group() {
                    groups.entry(g).or_default().insert(plb);
                }
            }
            for (g, homes) in groups {
                assert_eq!(homes.len(), 1, "{design}: group {g} split across PLBs");
            }
            // No PLB over capacity.
            for col in 0..array.cols() {
                for row in 0..array.rows() {
                    let plb = array.plb(col, row);
                    for class in CellClass::PLB_CLASSES {
                        assert!(
                            plb.used(class) <= arch.capacity().count(class),
                            "{design}: PLB ({col},{row}) over capacity on {class}"
                        );
                    }
                }
            }
            // Placement is complete and on PLB centres.
            assert!(placement.is_complete(&mapped));
        }
    }
}

/// Routing after packing must be congestion-legal and the timing report
/// must cover every endpoint.
#[test]
fn routed_arrays_are_congestion_legal() {
    let params = DesignParams::tiny();
    let src = generic::library();
    let arch = PlbArchitecture::granular();
    let golden = NamedDesign::NetworkSwitch.generate(&params);
    let mut mapped = vpga::synth::map_netlist_fast(&golden, &src, &arch).unwrap();
    vpga::compact::compact(&mut mapped, &arch).unwrap();
    let place_cfg = PlaceConfig::default();
    let mut placement = vpga::place::place(&mapped, arch.library(), &place_cfg);
    let array = vpga::pack::pack_iterative(
        &mapped,
        &arch,
        &mut placement,
        &place_cfg,
        &PackConfig::default(),
    )
    .unwrap();
    let route_cfg = vpga::route::RouteConfig {
        tile_size: Some(array.plb_pitch()),
        ..vpga::route::RouteConfig::default()
    };
    let routing = vpga::route::route(&mapped, arch.library(), &placement, &route_cfg);
    assert_eq!(routing.overflow_edges(), 0, "array routing must be legal");
    let sta = vpga::timing::analyze(
        &mapped,
        arch.library(),
        &placement,
        Some(&routing),
        &vpga::timing::TimingConfig::default(),
    );
    let dffs = mapped
        .cells()
        .filter(|(_, c)| {
            c.lib_id()
                .is_some_and(|id| arch.library().cell(id).unwrap().is_sequential())
        })
        .count();
    assert_eq!(
        sta.endpoints().len(),
        mapped.outputs().len() + dffs,
        "every PO and DFF D pin is a timing endpoint"
    );
}

/// The cut-based mapper is a drop-in alternative front end.
#[test]
fn cut_based_front_end_is_equivalent_too() {
    let params = DesignParams::tiny();
    let src = generic::library();
    let golden = NamedDesign::Firewire.generate(&params);
    let arch = PlbArchitecture::lut_based();
    let mut mapped = vpga::synth::map_netlist(&golden, &src, &arch).expect("mapping succeeds");
    vpga::compact::compact(&mut mapped, &arch).expect("compaction succeeds");
    let mut rng = SmallRng::seed_from_u64(7);
    let vectors: Vec<Vec<bool>> = (0..40)
        .map(|_| (0..golden.inputs().len()).map(|_| rng.gen()).collect())
        .collect();
    let div =
        first_divergence(&golden, &src, &mapped, arch.library(), &vectors).expect("simulable");
    assert_eq!(div, None);
}
