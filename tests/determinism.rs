//! The parallel flow executor must be invisible in the results: the same
//! matrix run with 1 worker or N workers — or run twice — produces
//! bit-identical `FlowResult`s (pinned through `f64::to_bits`-based
//! fingerprints that cover every metric and stage counter, but not wall
//! times).

use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::report::Matrix;
use vpga::flow::{run_design, Executor, FlowConfig, FlowJob, FlowMatrix, FlowVariant};

#[test]
fn full_matrix_is_bit_identical_for_any_worker_count() {
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    let serial = Matrix::run_parallel(&params, &config, 1).expect("serial matrix");
    let parallel = Matrix::run_parallel(&params, &config, 4).expect("parallel matrix");
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "jobs=1 and jobs=4 diverged"
    );
    // Field-level comparison too, so a regression names the culprit.
    assert_eq!(serial.outcomes().len(), parallel.outcomes().len());
    for (s, p) in serial.outcomes().iter().zip(parallel.outcomes()) {
        assert_eq!(s.design, p.design);
        assert_eq!(s.arch, p.arch);
        for (a, b) in [(&s.flow_a, &p.flow_a), (&s.flow_b, &p.flow_b)] {
            let name = format!("{} / {} / {}", s.design, s.arch, a.variant);
            assert_eq!(a.die_area.to_bits(), b.die_area.to_bits(), "{name}: area");
            assert_eq!(
                a.avg_top10_slack.to_bits(),
                b.avg_top10_slack.to_bits(),
                "{name}: slack"
            );
            assert_eq!(
                a.wirelength.to_bits(),
                b.wirelength.to_bits(),
                "{name}: wire"
            );
            assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits(), "{name}: power");
            assert_eq!(a.cells, b.cells, "{name}: cells");
            assert_eq!(a.array, b.array, "{name}: array");
            assert_eq!(a.route_overflow, b.route_overflow, "{name}: overflow");
        }
    }
    // The rendered tables — what the bench binaries print — match verbatim.
    assert_eq!(serial.table1(), parallel.table1());
    assert_eq!(serial.table2(), parallel.table2());
}

#[test]
fn repeated_runs_are_bit_identical() {
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    let jobs = vec![
        FlowJob {
            design: NamedDesign::Alu,
            arch: PlbArchitecture::granular(),
            variant: FlowVariant::A,
        },
        FlowJob {
            design: NamedDesign::Alu,
            arch: PlbArchitecture::granular(),
            variant: FlowVariant::B,
        },
        FlowJob {
            design: NamedDesign::Alu,
            arch: PlbArchitecture::lut_based(),
            variant: FlowVariant::B,
        },
    ];
    let matrix = FlowMatrix::from_jobs(jobs);
    let first = matrix
        .run(&params, &config, &Executor::new(2))
        .expect("first run");
    let second = matrix
        .run(&params, &config, &Executor::new(2))
        .expect("second run");
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.result.fingerprint(), b.result.fingerprint());
    }
}

#[test]
fn executor_subset_matches_run_design() {
    let params = DesignParams::tiny();
    let config = FlowConfig::default();
    let arch = PlbArchitecture::lut_based();
    let jobs = vec![
        FlowJob {
            design: NamedDesign::NetworkSwitch,
            arch: arch.clone(),
            variant: FlowVariant::B,
        },
        FlowJob {
            design: NamedDesign::NetworkSwitch,
            arch: arch.clone(),
            variant: FlowVariant::A,
        },
    ];
    let out = FlowMatrix::from_jobs(jobs)
        .run(&params, &config, &Executor::new(2))
        .expect("subset run");
    let whole = run_design(
        &NamedDesign::NetworkSwitch.generate(&params),
        &arch,
        &config,
    )
    .expect("run_design");
    assert_eq!(out[0].result.fingerprint(), whole.flow_b.fingerprint());
    assert_eq!(out[1].result.fingerprint(), whole.flow_a.fingerprint());
    assert_eq!(out[0].design, whole.design);
}
