//! Round-trip property suite for the interchange codecs.
//!
//! Locks down the two contracts the formats exist for:
//!
//! * `.vxdl`: `encode → parse → encode` is a fixpoint on the emitted
//!   text, and the parsed-back netlist + placement fingerprint equals
//!   the original's (bit-identical snapshots).
//! * SDF: the emitted annotation re-parses with every delay exactly
//!   equal (`f64` bit patterns) to the [`vpga::timing::TimingGraph`]
//!   arc delays it was built from.
//!
//! Plus the corruption half: truncated, line-shuffled, or token-spliced
//! artifacts must produce positioned parse errors, never panics — the
//! same contract `tests/parser_robustness.rs` enforces for the Verilog
//! reader. The golden tests pin the exact bytes the flow emits for the
//! tiny ALU so any codec or delay-model drift is a visible diff
//! (regenerate with `VPGA_BLESS_GOLDENS=1 cargo test golden`).

use proptest::prelude::*;
use vpga::core::PlbArchitecture;
use vpga::designs::{DesignParams, NamedDesign};
use vpga::flow::{run_design, EmitConfig, FlowConfig};
use vpga::interchange::{sdf, snapshot_fingerprint, vxdl, InterchangeError};
use vpga::netlist::library::generic;
use vpga::netlist::{NetId, Netlist};
use vpga::place::Placement;
use vpga::timing::{IncrementalSta, TimingConfig};

/// Strategy: a random netlist over the generic library, including
/// flip-flops so the SDF writer's sequential (`d -> q`) arcs are
/// exercised alongside the combinational `i<k> -> y` ones.
fn arbitrary_netlist() -> impl Strategy<Value = Netlist> {
    let gate_names = prop::sample::select(vec![
        "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "MUX2", "MAJ3", "XOR3", "AOI21", "INV",
        "DFF",
    ]);
    (
        2usize..5,
        prop::collection::vec((gate_names, any::<u64>()), 3..30),
    )
        .prop_map(|(n_inputs, gates)| {
            let lib = generic::library();
            let mut n = Netlist::new("random");
            let mut nets: Vec<NetId> = (0..n_inputs)
                .map(|i| n.add_input(format!("i{i}")))
                .collect();
            for (ix, (gate, seed)) in gates.into_iter().enumerate() {
                let arity = lib.cell_by_name(gate).unwrap().arity();
                let pins: Vec<NetId> = (0..arity)
                    .map(|k| nets[(seed as usize + k * 7919) % nets.len()])
                    .collect();
                let out = n
                    .add_lib_cell(format!("g{ix}"), &lib, gate, &pins)
                    .expect("valid gate");
                nets.push(out);
            }
            n.add_output("y", *nets.last().unwrap());
            n.add_output("z", nets[nets.len() / 2]);
            n
        })
}

/// Strategy: a netlist plus an initial placement at a varying utilization
/// (different utilizations give different die sizes and coordinates).
fn netlist_and_placement() -> impl Strategy<Value = (Netlist, Placement)> {
    (arbitrary_netlist(), 3u32..9).prop_map(|(n, util)| {
        let lib = generic::library();
        let p = Placement::initial(&n, &lib, f64::from(util) / 10.0);
        (n, p)
    })
}

/// Deterministic pseudo-routes for a subset of the nets (the codec
/// carries routes as plain data, so any segment lists will do).
fn pseudo_routes(n: &Netlist, seed: u64) -> Vec<(u32, Vec<vxdl::Seg>)> {
    n.nets()
        .filter(|id| (id.index() as u64).wrapping_add(seed).is_multiple_of(3))
        .map(|id| {
            let k = id.index();
            (
                id.index() as u32,
                vec![((k, k), (k, k + 1)), ((k, k + 1), (k + 1, k + 1))],
            )
        })
        .collect()
}

/// Largest char boundary of `s` at or below `i` (truncation must not
/// split a UTF-8 sequence just to build the test input).
fn char_floor(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// A parse failure must be positioned inside the text it points at.
fn assert_positioned(err: &InterchangeError, text: &str) {
    if let InterchangeError::Parse { line, col, .. } = err {
        assert!(*line >= 1 && *col >= 1, "positions are 1-based: {err}");
        let offset = err.byte_offset(text).expect("parse errors are positioned");
        assert!(
            offset <= text.len(),
            "offset {offset} past end of {} bytes",
            text.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `.vxdl` encode → parse → encode is a fixpoint, the parse-back
    /// fingerprint equals the original's, and routes survive verbatim.
    #[test]
    fn vxdl_encode_parse_encode_is_a_fixpoint(
        pair in netlist_and_placement(),
        seed in 0u64..1000,
    ) {
        let (netlist, placement) = pair;
        let routes = pseudo_routes(&netlist, seed);
        let text = vxdl::encode(&netlist, &placement, &routes);
        let doc = vxdl::parse(&text).expect("emitted text parses");
        prop_assert_eq!(
            vxdl::encode(&doc.netlist, &doc.placement, &doc.routes),
            text.clone(),
            "encode-parse-encode must be the identity"
        );
        prop_assert_eq!(doc.routes, routes);
        prop_assert_eq!(
            snapshot_fingerprint(&doc.netlist, &doc.placement),
            snapshot_fingerprint(&netlist, &placement),
            "parse-back snapshot fingerprint differs"
        );
    }

    /// The SDF annotation re-parses to exactly the structure built from
    /// the timing graph: every IOPATH / INTERCONNECT delay equal down to
    /// the `f64` bit pattern, and re-emission is a fixpoint.
    #[test]
    fn sdf_round_trip_is_delay_exact(pair in netlist_and_placement()) {
        let (netlist, placement) = pair;
        let lib = generic::library();
        let mut sta = IncrementalSta::new(&netlist, &lib, &TimingConfig::default())
            .expect("random netlists are acyclic through registers");
        sta.full_analyze(&netlist, &placement, None);
        let arcs = sta.graph().arc_delays(&netlist, &placement, None);
        let file = sdf::SdfFile::from_timing(&netlist, &lib, &arcs, "test/fixture");
        let text = file.to_text();
        let parsed = sdf::parse(&text).expect("emitted SDF parses");
        prop_assert_eq!(&parsed, &file, "parsed SDF differs from source");
        prop_assert_eq!(parsed.to_text(), text, "SDF re-emission is not a fixpoint");
        for cell in &file.cells {
            for arc in cell.iopaths.iter().chain(&cell.interconnects) {
                prop_assert!(arc.delay.is_finite(), "non-finite delay in {}", cell.instance);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a `.vxdl` file anywhere yields a positioned error (or,
    /// at a record boundary, possibly a clean parse) — never a panic.
    #[test]
    fn vxdl_truncation_never_panics(
        pair in netlist_and_placement(),
        frac in 0u32..100,
    ) {
        let (netlist, placement) = pair;
        let text = vxdl::encode(&netlist, &placement, &pseudo_routes(&netlist, 1));
        let cut = char_floor(&text, text.len() * frac as usize / 100);
        if let Err(e) = vxdl::parse(&text[..cut]) {
            assert_positioned(&e, &text[..cut]);
        }
    }

    /// Deleting, duplicating, or swapping whole lines is caught (slot
    /// counts, record keywords, or the decode validation trip) — never a
    /// panic, and any error is positioned.
    #[test]
    fn vxdl_line_mutations_never_panic(
        pair in netlist_and_placement(),
        pick in any::<u64>(),
        mode in 0u8..3,
    ) {
        let (netlist, placement) = pair;
        let text = vxdl::encode(&netlist, &placement, &[]);
        let mut lines: Vec<&str> = text.lines().collect();
        let i = (pick as usize) % lines.len();
        match mode {
            0 => { lines.remove(i); }
            1 => lines.insert(i, lines[i]),
            _ => {
                let j = (i + 1) % lines.len();
                lines.swap(i, j);
            }
        }
        let mutated = lines.join("\n");
        if let Err(e) = vxdl::parse(&mutated) {
            assert_positioned(&e, &mutated);
        }
    }

    /// Splicing junk tokens into a random line never panics.
    #[test]
    fn vxdl_token_splice_never_panics(
        pair in netlist_and_placement(),
        pick in any::<u64>(),
        junk in prop::sample::select(vec![
            "-1", "99999999999999999999", "\"", "n", "pip", "NaN", "\\u{xyz}", "lib-",
        ]),
    ) {
        let (netlist, placement) = pair;
        let text = vxdl::encode(&netlist, &placement, &pseudo_routes(&netlist, 2));
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let i = (pick as usize) % lines.len();
        let mut toks: Vec<&str> = lines[i].split(' ').collect();
        let at = (pick as usize / 7) % (toks.len() + 1);
        toks.insert(at, junk);
        lines[i] = toks.join(" ");
        let mutated = lines.join("\n");
        if let Err(e) = vxdl::parse(&mutated) {
            assert_positioned(&e, &mutated);
        }
    }

    /// Truncated or bit-flipped SDF files fail with positioned errors,
    /// never panics.
    #[test]
    fn sdf_corruption_never_panics(
        pair in netlist_and_placement(),
        frac in 0u32..100,
        flip in any::<u64>(),
    ) {
        let (netlist, placement) = pair;
        let lib = generic::library();
        let mut sta = IncrementalSta::new(&netlist, &lib, &TimingConfig::default()).unwrap();
        sta.full_analyze(&netlist, &placement, None);
        let arcs = sta.graph().arc_delays(&netlist, &placement, None);
        let text = sdf::SdfFile::from_timing(&netlist, &lib, &arcs, "x").to_text();
        let cut = char_floor(&text, text.len() * frac as usize / 100);
        if let Err(e) = sdf::parse(&text[..cut]) {
            assert_positioned(&e, &text[..cut]);
        }
        // Replace one character with a paren to unbalance the tree.
        let mut bytes: Vec<u8> = text.bytes().collect();
        let at = (flip as usize) % bytes.len();
        if bytes[at].is_ascii() {
            bytes[at] = if flip.is_multiple_of(2) { b'(' } else { b')' };
            let mutated = String::from_utf8(bytes).unwrap();
            if let Err(e) = sdf::parse(&mutated) {
                assert_positioned(&e, &mutated);
            }
        }
    }
}

/// Runs the full flow on the tiny ALU with emission on, returning the
/// emitted artifacts keyed by file name.
fn emit_tiny_alu(dir: &std::path::Path) -> Vec<(String, String)> {
    let design = NamedDesign::Alu.generate(&DesignParams::tiny());
    let arch = PlbArchitecture::granular();
    let config = FlowConfig {
        emit: EmitConfig {
            sdf_dir: Some(dir.to_path_buf()),
            xdl_dir: Some(dir.to_path_buf()),
        },
        ..FlowConfig::default()
    };
    run_design(&design, &arch, &config).expect("tiny alu flows cleanly");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("emit dir exists")
        .filter_map(|e| e.ok())
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(e.path()).expect("artifact readable");
            (name, text)
        })
        .collect();
    files.sort();
    files
}

/// The flow's emitted artifacts for the tiny ALU are byte-for-byte
/// identical to the checked-in goldens. `VPGA_BLESS_GOLDENS=1`
/// regenerates them.
#[test]
fn golden_artifacts_are_byte_identical() {
    let tmp = std::env::temp_dir().join(format!("vpga-goldens-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let files = emit_tiny_alu(&tmp);
    let expected = [
        "alu-granular-a.sdf",
        "alu-granular-a.vxdl",
        "alu-granular-b.sdf",
        "alu-granular-b.vxdl",
    ];
    assert_eq!(
        files.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        expected,
        "one SDF and one .vxdl per back-end variant"
    );
    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    if std::env::var_os("VPGA_BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(&goldens).unwrap();
        for (name, text) in &files {
            std::fs::write(goldens.join(name), text).unwrap();
        }
        let _ = std::fs::remove_dir_all(&tmp);
        return;
    }
    for (name, text) in &files {
        let golden = std::fs::read_to_string(goldens.join(name)).unwrap_or_else(|e| {
            panic!("missing golden {name} ({e}); bless with VPGA_BLESS_GOLDENS=1")
        });
        assert_eq!(
            text, &golden,
            "{name} drifted from tests/goldens/{name}; if the change is intentional, \
             regenerate with VPGA_BLESS_GOLDENS=1 cargo test golden"
        );
    }
    // The goldens themselves satisfy the round-trip fixpoints.
    for (name, text) in &files {
        if name.ends_with(".vxdl") {
            let doc = vxdl::parse(text).expect("golden .vxdl parses");
            assert_eq!(
                &vxdl::encode(&doc.netlist, &doc.placement, &doc.routes),
                text
            );
        } else {
            let file = sdf::parse(text).expect("golden SDF parses");
            assert_eq!(&file.to_text(), text);
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
